"""Testbed assembly — the whole of Fig 4 in one object.

Builds the paper's testbed on a simulated Dell PowerEdge R450: the OAI
docker bridge, the core VNFs (NRF, UDR, UDM, AUSF, AMF, SMF, UPF), the
P-AKA module slice in the requested isolation mode, subscriber
provisioning and a gNB.  Examples, tests and every benchmark start here:

>>> testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX))
>>> ue = testbed.add_subscriber("0000000001")
>>> outcome = testbed.register(ue)
>>> outcome.success
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.container.engine import ContainerEngine
from repro.container.network import BridgeNetwork
from repro.crypto.kdf import serving_network_name
from repro.crypto.suci import Supi, x25519_public_key
from repro.fivegc.amf import Amf
from repro.fivegc.ausf import Ausf
from repro.fivegc.messages import RegistrationOutcome
from repro.fivegc.nf_base import CONTROL_PLANE_RING_SEED
from repro.fivegc.nrf import Nrf
from repro.fivegc.routing import ControlPlaneRouter, shard_labels, supi_ring
from repro.fivegc.smf import Smf
from repro.fivegc.udm import Udm
from repro.fivegc.udr import AuthSubscription, Udr
from repro.fivegc.upf import Upf
from repro.hw.host import PhysicalHost, paper_testbed_host
from repro.net.sbi import NFType
from repro.paka.deploy import IsolationMode, PakaDeployment, PakaSlice
from repro.paka.modules import EamfPakaModule, EausfPakaModule, EudmPakaModule
from repro.ran.gnb import AirLinkModel, Gnb
from repro.ran.ue import CommercialUE, UserEquipment
from repro.ran.usim import Usim


@dataclass
class TestbedConfig:
    """Knobs for a testbed build."""

    __test__ = False  # not a pytest test class despite the name

    seed: int = 0
    mcc: str = "001"
    mnc: str = "01"
    # None = monolithic VNFs (no external modules); CONTAINER / SGX = the
    # paper's two external-module deployments.
    isolation: Optional[IsolationMode] = IsolationMode.SGX
    enclave_size: str = "512M"
    # Per-module size overrides, e.g. {"eudm": "8G"} for the Fig 8 sweep.
    enclave_size_overrides: Optional[Dict[str, str]] = None
    max_threads: int = 4
    preheat: bool = True
    exitless: bool = False
    airlink: AirLinkModel = field(default_factory=AirLinkModel)
    # Bound the host event log for campaign-scale runs (None = unbounded).
    # Purely an observer-side memory knob: trims diagnostics retention,
    # never the simulated costs, so clocks stay bit-identical either way.
    event_log_capacity: Optional[int] = None
    # Sharded control plane: N replica sets of the serving path
    # (amf-k ↔ ausf-k ↔ udm-k, each with its own P-AKA module slice),
    # all NRF-registered; UEs are pinned to a slice by a seeded
    # consistent hash of their SUPI.  1 = the paper's single-slice
    # deployment, bit-identical to the pre-shard testbed.
    replicas: int = 1


class Testbed:
    """A fully wired 5G core + P-AKA slice + gNB on one host."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, config: TestbedConfig, host: PhysicalHost) -> None:
        self.config = config
        self.host = host
        self.engine = ContainerEngine(host)
        self.sbi = self.engine.create_network("oai-bridge")
        self.snn = serving_network_name(config.mcc, config.mnc).decode()
        self._subscriber_counter = 0

        # Home-network ECIES keypair for SUCI (Profile A).
        self.hn_private_key = host.rng.randbytes("hn.ecies", 32)
        self.hn_public_key = x25519_public_key(self.hn_private_key)

        replicas = config.replicas
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        # Shard labels: the single-slice deployment advertises none (its
        # NRF profiles — and thus every wire byte and simulated clock
        # tick — stay identical to the pre-shard testbed); replicated
        # slices are labelled "0".."N-1" and keyed off the shared ring.
        shards: List[Optional[str]] = (
            [None] if replicas == 1 else list(shard_labels(replicas))
        )

        def replica_name(base: str, index: int) -> str:
            return base if index == 0 else f"{base}-{index}"

        # Core VNFs.  The first replica of each serving-path NF keeps the
        # legacy name ("udm", "ausf", "amf") so named RNG streams and NRF
        # bodies are unchanged in the replicas=1 deployment.
        self.nrf = Nrf("nrf", host, self.sbi)
        self.udr = Udr("udr", host, self.sbi, hn_private_key=self.hn_private_key)
        self.udms = [
            Udm(
                replica_name("udm", k), host, self.sbi,
                hn_private_key=self.hn_private_key, shard=shards[k],
            )
            for k in range(replicas)
        ]
        self.ausfs = [
            Ausf(replica_name("ausf", k), host, self.sbi, shard=shards[k])
            for k in range(replicas)
        ]
        self.amfs = [
            Amf(
                replica_name("amf", k), host, self.sbi,
                serving_network_name=self.snn, shard=shards[k],
            )
            for k in range(replicas)
        ]
        self.udm = self.udms[0]
        self.ausf = self.ausfs[0]
        self.amf = self.amfs[0]
        self.smf = Smf("smf", host, self.sbi)
        self.upf = Upf("upf", host, self.sbi)

        core_nfs = (
            self.nrf, self.udr, *self.udms, *self.ausfs, *self.amfs,
            self.smf, self.upf,
        )
        registry = {nf.name: nf for nf in core_nfs}
        for nf in core_nfs[1:]:
            nf.register_with(self.nrf)
        for udm in self.udms:
            udm.discover(NFType.UDR, registry)
        for ausf in self.ausfs:
            ausf.discover(NFType.UDM, registry)
        for amf in self.amfs:
            amf.discover(NFType.AUSF, registry)
            amf.discover(NFType.SMF, registry)
        self.smf.discover(NFType.UPF, registry)

        # UE→slice pinning, shared by every layer of the deployment.
        self.router: Optional[ControlPlaneRouter] = None
        self._udm_by_shard: Dict[str, Udm] = {}
        if replicas > 1:
            ring = supi_ring(replicas, seed=CONTROL_PLANE_RING_SEED)
            amf_by_shard = dict(zip(shard_labels(replicas), self.amfs))
            self.router = ControlPlaneRouter(ring, amf_by_shard)
            self._udm_by_shard = dict(zip(shard_labels(replicas), self.udms))

        # P-AKA slice.
        self.deployment = PakaDeployment(host, self.engine, self.sbi)
        self.paka: Optional[PakaSlice] = None
        if config.isolation is not None:
            self.paka = self.deployment.deploy(
                config.isolation,
                enclave_size=config.enclave_size,
                max_threads=config.max_threads,
                preheat=config.preheat,
                exitless=config.exitless,
                size_overrides=config.enclave_size_overrides,
                replicas=replicas,
            )
            # Module k belongs to slice k: the shard's NF talks only to
            # its own P-AKA module (long-term key state stays per-slice).
            for udm, module in zip(self.udms, self.paka.replica_groups["eudm"]):
                assert isinstance(module, EudmPakaModule)
                udm.attach_module(module)
            for ausf, module in zip(self.ausfs, self.paka.replica_groups["eausf"]):
                assert isinstance(module, EausfPakaModule)
                ausf.attach_module(module)
            for amf, module in zip(self.amfs, self.paka.replica_groups["eamf"]):
                assert isinstance(module, EamfPakaModule)
                amf.attach_module(module)

        # RAN.  A sharded deployment hands the gNB the SUPI router so N2
        # traffic enters at the UE's own slice.
        self.gnb = Gnb(
            "gnb-0", host, self.amf, plmn=config.mcc + config.mnc,
            airlink=config.airlink, router=self.router,
        )

    # ------------------------------------------------------------- factory

    @classmethod
    def build(cls, config: Optional[TestbedConfig] = None) -> "Testbed":
        config = config or TestbedConfig()
        host = paper_testbed_host(
            seed=config.seed, event_log_capacity=config.event_log_capacity
        )
        return cls(config, host)

    # --------------------------------------------------------- subscribers

    def add_subscriber(
        self,
        msin: Optional[str] = None,
        commercial: bool = False,
        os_version: Optional[str] = None,
    ) -> UserEquipment:
        """Provision a subscriber in the UDR (and the eUDM module) and
        return its UE."""
        if msin is None:
            self._subscriber_counter += 1
            msin = f"{self._subscriber_counter:010d}"
        supi = Supi(mcc=self.config.mcc, mnc=self.config.mnc, msin=msin)
        k = self.host.rng.randbytes(f"sub.{msin}.k", 16)
        opc = self.host.rng.randbytes(f"sub.{msin}.opc", 16)
        self.udr.provision(AuthSubscription(supi=str(supi), k=k, opc=opc))
        # Shard-aware provisioning: the key goes into the eUDM module of
        # the slice that will serve this SUPI (the only module that will
        # ever generate its vectors).
        udm = (
            self.udm
            if self.router is None
            else self._udm_by_shard[self.router.shard_for(str(supi))]
        )
        if udm.offload_module is not None:
            udm.provision_module_key(str(supi), k)
        usim = Usim(supi=supi, k=k, opc=opc)
        ue_name = f"ue-{msin}"
        if commercial:
            kwargs = {} if os_version is None else {"os_version": os_version}
            return CommercialUE(
                ue_name, usim, self.hn_public_key, self.host.rng, self.snn, **kwargs
            )
        return UserEquipment(ue_name, usim, self.hn_public_key, self.host.rng, self.snn)

    # ------------------------------------------------------------ actions

    def register(self, ue: UserEquipment, establish_session: bool = True) -> RegistrationOutcome:
        return self.gnb.register(ue, establish_session=establish_session)

    def module_servers(self) -> Dict[str, object]:
        """The module HTTP servers (for metric collection), one entry per
        deployed replica (``eudm`` for slice 0, ``eudm#1`` … beyond)."""
        if self.paka is None:
            return {}
        servers: Dict[str, object] = {}
        for short_name, group in self.paka.replica_groups.items():
            for k, module in enumerate(group):
                key = short_name if k == 0 else f"{short_name}#{k}"
                servers[key] = module.server
        return servers

    def collect_metrics(self, registry=None, fault_injector=None):
        """Snapshot the whole testbed into a ``repro.obs`` registry."""
        from repro.obs.collect import collect_testbed_metrics

        return collect_testbed_metrics(
            self, registry=registry, fault_injector=fault_injector
        )

    def trace_registration(self, establish_session: bool = False):
        """Trace one fresh registration (see :mod:`repro.obs.collect`)."""
        from repro.obs.collect import trace_registration

        return trace_registration(self, establish_session=establish_session)

    def idle(self, duration_s: float) -> None:
        """Let the slice sit idle concurrently (drives Table III's AEXs)."""
        if self.paka is not None:
            for module in self.paka.modules.values():
                module.runtime.idle(duration_s, advance_clock=False)
        self.host.clock.advance_s(duration_s)
        monitor = self.host.monitor
        if monitor is not None:
            monitor.tick()

    def teardown(self) -> None:
        if self.paka is not None:
            self.paka.teardown(self.engine)
        for nf in (
            self.upf, self.smf, *reversed(self.amfs), *reversed(self.ausfs),
            *reversed(self.udms), self.udr, self.nrf,
        ):
            nf.shutdown()
