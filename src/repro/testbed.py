"""Testbed assembly — the whole of Fig 4 in one object.

Builds the paper's testbed on a simulated Dell PowerEdge R450: the OAI
docker bridge, the core VNFs (NRF, UDR, UDM, AUSF, AMF, SMF, UPF), the
P-AKA module slice in the requested isolation mode, subscriber
provisioning and a gNB.  Examples, tests and every benchmark start here:

>>> testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX))
>>> ue = testbed.add_subscriber("0000000001")
>>> outcome = testbed.register(ue)
>>> outcome.success
True
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.container.engine import ContainerEngine
from repro.container.network import BridgeNetwork
from repro.crypto.kdf import serving_network_name
from repro.crypto.suci import Supi, x25519_public_key
from repro.fivegc.amf import Amf
from repro.fivegc.ausf import Ausf
from repro.fivegc.messages import RegistrationOutcome
from repro.fivegc.nrf import Nrf
from repro.fivegc.smf import Smf
from repro.fivegc.udm import Udm
from repro.fivegc.udr import AuthSubscription, Udr
from repro.fivegc.upf import Upf
from repro.hw.host import PhysicalHost, paper_testbed_host
from repro.net.sbi import NFType
from repro.paka.deploy import IsolationMode, PakaDeployment, PakaSlice
from repro.paka.modules import EamfPakaModule, EausfPakaModule, EudmPakaModule
from repro.ran.gnb import AirLinkModel, Gnb
from repro.ran.ue import CommercialUE, UserEquipment
from repro.ran.usim import Usim


@dataclass
class TestbedConfig:
    """Knobs for a testbed build."""

    __test__ = False  # not a pytest test class despite the name

    seed: int = 0
    mcc: str = "001"
    mnc: str = "01"
    # None = monolithic VNFs (no external modules); CONTAINER / SGX = the
    # paper's two external-module deployments.
    isolation: Optional[IsolationMode] = IsolationMode.SGX
    enclave_size: str = "512M"
    # Per-module size overrides, e.g. {"eudm": "8G"} for the Fig 8 sweep.
    enclave_size_overrides: Optional[Dict[str, str]] = None
    max_threads: int = 4
    preheat: bool = True
    exitless: bool = False
    airlink: AirLinkModel = field(default_factory=AirLinkModel)
    # Bound the host event log for campaign-scale runs (None = unbounded).
    # Purely an observer-side memory knob: trims diagnostics retention,
    # never the simulated costs, so clocks stay bit-identical either way.
    event_log_capacity: Optional[int] = None


class Testbed:
    """A fully wired 5G core + P-AKA slice + gNB on one host."""

    __test__ = False  # not a pytest test class despite the name

    def __init__(self, config: TestbedConfig, host: PhysicalHost) -> None:
        self.config = config
        self.host = host
        self.engine = ContainerEngine(host)
        self.sbi = self.engine.create_network("oai-bridge")
        self.snn = serving_network_name(config.mcc, config.mnc).decode()
        self._subscriber_counter = 0

        # Home-network ECIES keypair for SUCI (Profile A).
        self.hn_private_key = host.rng.randbytes("hn.ecies", 32)
        self.hn_public_key = x25519_public_key(self.hn_private_key)

        # Core VNFs.
        self.nrf = Nrf("nrf", host, self.sbi)
        self.udr = Udr("udr", host, self.sbi, hn_private_key=self.hn_private_key)
        self.udm = Udm("udm", host, self.sbi, hn_private_key=self.hn_private_key)
        self.ausf = Ausf("ausf", host, self.sbi)
        self.amf = Amf("amf", host, self.sbi, serving_network_name=self.snn)
        self.smf = Smf("smf", host, self.sbi)
        self.upf = Upf("upf", host, self.sbi)

        registry = {
            nf.name: nf
            for nf in (self.nrf, self.udr, self.udm, self.ausf, self.amf, self.smf, self.upf)
        }
        for nf in (self.udr, self.udm, self.ausf, self.amf, self.smf, self.upf):
            nf.register_with(self.nrf)
        self.udm.discover(NFType.UDR, registry)
        self.ausf.discover(NFType.UDM, registry)
        self.amf.discover(NFType.AUSF, registry)
        self.amf.discover(NFType.SMF, registry)
        self.smf.discover(NFType.UPF, registry)

        # P-AKA slice.
        self.deployment = PakaDeployment(host, self.engine, self.sbi)
        self.paka: Optional[PakaSlice] = None
        if config.isolation is not None:
            self.paka = self.deployment.deploy(
                config.isolation,
                enclave_size=config.enclave_size,
                max_threads=config.max_threads,
                preheat=config.preheat,
                exitless=config.exitless,
                size_overrides=config.enclave_size_overrides,
            )
            eudm = self.paka.module("eudm")
            eausf = self.paka.module("eausf")
            eamf = self.paka.module("eamf")
            assert isinstance(eudm, EudmPakaModule)
            assert isinstance(eausf, EausfPakaModule)
            assert isinstance(eamf, EamfPakaModule)
            self.udm.attach_module(eudm)
            self.ausf.attach_module(eausf)
            self.amf.attach_module(eamf)

        # RAN.
        self.gnb = Gnb(
            "gnb-0", host, self.amf, plmn=config.mcc + config.mnc,
            airlink=config.airlink,
        )

    # ------------------------------------------------------------- factory

    @classmethod
    def build(cls, config: Optional[TestbedConfig] = None) -> "Testbed":
        config = config or TestbedConfig()
        host = paper_testbed_host(
            seed=config.seed, event_log_capacity=config.event_log_capacity
        )
        return cls(config, host)

    # --------------------------------------------------------- subscribers

    def add_subscriber(
        self,
        msin: Optional[str] = None,
        commercial: bool = False,
        os_version: Optional[str] = None,
    ) -> UserEquipment:
        """Provision a subscriber in the UDR (and the eUDM module) and
        return its UE."""
        if msin is None:
            self._subscriber_counter += 1
            msin = f"{self._subscriber_counter:010d}"
        supi = Supi(mcc=self.config.mcc, mnc=self.config.mnc, msin=msin)
        k = self.host.rng.randbytes(f"sub.{msin}.k", 16)
        opc = self.host.rng.randbytes(f"sub.{msin}.opc", 16)
        self.udr.provision(AuthSubscription(supi=str(supi), k=k, opc=opc))
        if self.udm.offload_module is not None:
            self.udm.provision_module_key(str(supi), k)
        usim = Usim(supi=supi, k=k, opc=opc)
        ue_name = f"ue-{msin}"
        if commercial:
            kwargs = {} if os_version is None else {"os_version": os_version}
            return CommercialUE(
                ue_name, usim, self.hn_public_key, self.host.rng, self.snn, **kwargs
            )
        return UserEquipment(ue_name, usim, self.hn_public_key, self.host.rng, self.snn)

    # ------------------------------------------------------------ actions

    def register(self, ue: UserEquipment, establish_session: bool = True) -> RegistrationOutcome:
        return self.gnb.register(ue, establish_session=establish_session)

    def module_servers(self) -> Dict[str, object]:
        """The three module HTTP servers (for metric collection)."""
        if self.paka is None:
            return {}
        return {name: module.server for name, module in self.paka.modules.items()}

    def collect_metrics(self, registry=None, fault_injector=None):
        """Snapshot the whole testbed into a ``repro.obs`` registry."""
        from repro.obs.collect import collect_testbed_metrics

        return collect_testbed_metrics(
            self, registry=registry, fault_injector=fault_injector
        )

    def trace_registration(self, establish_session: bool = False):
        """Trace one fresh registration (see :mod:`repro.obs.collect`)."""
        from repro.obs.collect import trace_registration

        return trace_registration(self, establish_session=establish_session)

    def idle(self, duration_s: float) -> None:
        """Let the slice sit idle concurrently (drives Table III's AEXs)."""
        if self.paka is not None:
            for module in self.paka.modules.values():
                module.runtime.idle(duration_s, advance_clock=False)
        self.host.clock.advance_s(duration_s)
        monitor = self.host.monitor
        if monitor is not None:
            monitor.tick()

    def teardown(self) -> None:
        if self.paka is not None:
            self.paka.teardown(self.engine)
        for nf in (self.upf, self.smf, self.amf, self.ausf, self.udm, self.udr, self.nrf):
            nf.shutdown()
