"""Command-line interface: ``python -m repro <command>``.

Runs any of the paper's experiments (or the ablations) from a terminal
and prints the same report the benchmarks record, so a downstream user
can regenerate a single figure without touching pytest:

.. code-block:: console

   $ python -m repro fig9 --registrations 250
   $ python -m repro table3 --max-ues 10
   $ python -m repro register --isolation sgx
   $ python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments.harness import ExperimentReport

_EXPERIMENTS: Dict[str, str] = {
    "fig7": "Enclave load time (Fig 7)",
    "fig8": "Thread/EPC sweep (Fig 8)",
    "fig9": "Functional/total latency (Fig 9, Table II)",
    "fig10": "Response times (Fig 10, Table II)",
    "fig11": "OTA feasibility (Fig 11, Table IV)",
    "table1": "Enclave I/O contracts (Table I)",
    "table2": "Consolidated overheads (Table II)",
    "table3": "SGX statistics (Table III)",
    "table5": "Key issues (Table V)",
    "setup": "End-to-end session setup",
    "ablation-preheat": "Preheat ablation",
    "ablation-exitless": "Exitless ablation",
    "ablation-backends": "HMEE backend comparison",
    "ablation-mtcp": "User-level TCP ablation",
    "scaling": "Horizontal scaling of P-AKA replicas",
    "migration": "Slice migration service gap per backend",
    "availability": "Registration availability under injected faults",
}


def _run_experiment(name: str, args: argparse.Namespace) -> ExperimentReport:
    n = args.registrations
    jobs = getattr(args, "jobs", 1)
    if name == "fig7":
        from repro.experiments.figures import figure7_enclave_load_time

        return figure7_enclave_load_time(iterations=args.iterations)
    if name == "fig8":
        from repro.experiments.sweeps import figure8_threads_epc_sweep

        return figure8_threads_epc_sweep(registrations=n, jobs=jobs)
    if name == "fig9":
        from repro.experiments.figures import figure9_functional_total_latency

        return figure9_functional_total_latency(registrations=n, jobs=jobs)
    if name == "fig10":
        from repro.experiments.figures import figure10_response_time

        return figure10_response_time(registrations=n, jobs=jobs)
    if name == "fig11":
        from repro.experiments.figures import figure11_ota_feasibility

        return figure11_ota_feasibility()
    if name == "table1":
        from repro.experiments.tables import table1_enclave_io

        return table1_enclave_io()
    if name == "table2":
        from repro.experiments.tables import table2_overheads

        return table2_overheads(registrations=n)
    if name == "table3":
        from repro.experiments.tables import table3_sgx_stats

        return table3_sgx_stats(max_ues=args.max_ues, iterations=args.iterations)
    if name == "table5":
        from repro.experiments.tables import table5_key_issues

        return table5_key_issues()
    if name == "setup":
        from repro.experiments.session_setup import session_setup_experiment

        return session_setup_experiment(registrations=n)
    if name == "ablation-preheat":
        from repro.experiments.ablations import preheat_ablation

        return preheat_ablation(registrations=n, jobs=jobs)
    if name == "ablation-exitless":
        from repro.experiments.ablations import exitless_ablation

        return exitless_ablation(registrations=n, jobs=jobs)
    if name == "ablation-backends":
        from repro.experiments.ablations import hmee_backend_comparison

        return hmee_backend_comparison(registrations=n, jobs=jobs)
    if name == "ablation-mtcp":
        from repro.experiments.ablations import userlevel_tcp_ablation

        return userlevel_tcp_ablation(requests=max(40, n))
    if name == "scaling":
        from repro.experiments.scaling import horizontal_scaling_experiment

        return horizontal_scaling_experiment(requests_per_replica=max(15, n // 4))
    if name == "migration":
        from repro.experiments.migration import migration_experiment

        return migration_experiment()
    if name == "availability":
        from repro.experiments.availability import availability_experiment

        return availability_experiment(registrations=max(40, n))
    raise KeyError(name)


def _cmd_list(_: argparse.Namespace) -> int:
    width = max(len(name) for name in _EXPERIMENTS)
    for name, description in _EXPERIMENTS.items():
        print(f"  {name:<{width}}  {description}")
    return 0


def _cmd_register(args: argparse.Namespace) -> int:
    from repro.paka.deploy import IsolationMode
    from repro.testbed import Testbed, TestbedConfig

    isolation = None if args.isolation == "monolithic" else IsolationMode(args.isolation)
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=args.seed))
    successes = 0
    for _ in range(args.count):
        ue = testbed.add_subscriber()
        outcome = testbed.register(ue)
        successes += outcome.success
        print(
            f"  {ue.usim.supi}: "
            + (
                f"registered as {outcome.guti} in {outcome.session_setup_ms:.2f} ms"
                if outcome.success
                else f"FAILED ({outcome.failure_cause})"
            )
        )
    print(f"{successes}/{args.count} registrations succeeded")
    return 0 if successes == args.count else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one registration and print the span tree + breakdown."""
    import json

    from repro.obs.trace import format_span_tree
    from repro.paka.deploy import IsolationMode
    from repro.testbed import Testbed, TestbedConfig

    isolation = None if args.isolation == "monolithic" else IsolationMode(args.isolation)
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=args.seed))
    for _ in range(args.warmup):
        testbed.register(testbed.add_subscriber())
    trace = testbed.trace_registration()
    if args.json:
        payload = {
            "schema": 1,
            "outcome": {
                "success": trace.outcome.success,
                "session_setup_ms": trace.outcome.session_setup_ms,
                "nas_exchanges": trace.outcome.nas_exchanges,
            },
            "breakdown": trace.breakdown,
            "stats_delta": {
                name: {
                    "eenters": delta.eenters,
                    "eexits": delta.eexits,
                    "ocalls": delta.ocalls,
                    "aexs": delta.aexs,
                }
                for name, delta in trace.stats_delta.items()
            },
            "spans": trace.root.to_dict(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if trace.outcome.success else 1
    print("\n".join(format_span_tree(trace.root)))
    if trace.breakdown:
        print()
        print("Per-module decomposition (Fig 9 / Table II / Table III):")
        header = (
            f"  {'module':<8} {'L_F us':>9} {'L_T us':>9} {'L_N us':>9} "
            f"{'R us':>9} {'EENTER':>7} {'EEXIT':>7}"
        )
        print(header)
        for module, row in trace.breakdown.items():
            print(
                f"  {module:<8} {row['lf_us']:>9.2f} {row['lt_us']:>9.2f} "
                f"{row['ln_us']:>9.2f} {row['r_us']:>9.2f} "
                f"{row['eenters']:>7} {row['eexits']:>7}"
            )
    return 0 if trace.outcome.success else 1


def _metrics_selftest() -> int:
    """Round-trip self-check used by CI: exporters must parse back."""
    from repro.obs.export import (
        parse_prometheus_text,
        registry_from_dict,
        registry_to_dict,
        registry_to_json,
        registry_to_prometheus_text,
    )
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    registry.counter("selftest_requests_total", server="eamf-paka-srv-0").inc(42)
    registry.gauge("selftest_open", nf="amf").set(1.0)
    histogram = registry.histogram("selftest_latency_us", component="eudm")
    for value in (10.0, 20.0, 30.0, 40.0):
        histogram.observe(value)

    rebuilt = registry_from_dict(registry_to_dict(registry))
    if registry_to_json(rebuilt) != registry_to_json(registry):
        print("selftest FAILED: JSON round-trip mismatch", file=sys.stderr)
        return 1
    samples = parse_prometheus_text(registry_to_prometheus_text(registry))
    key = ("selftest_requests_total", (("server", "eamf-paka-srv-0"),))
    if samples.get(key) != 42.0:
        print("selftest FAILED: Prometheus round-trip mismatch", file=sys.stderr)
        return 1
    print("metrics selftest OK "
          f"({len(registry)} metrics, {len(samples)} Prometheus samples)")
    return 0


def _monitor_selftest() -> int:
    """Scraper/Tsdb/SLO self-check used by CI: no testbed, pure sim time.

    Drives a synthetic producer through a stall window and asserts the
    burn-rate alert fires during the outage, resolves after it, and that
    the whole pipeline is deterministic (bit-identical on re-run).
    """
    import json

    from repro.obs.metrics import MetricsRegistry
    from repro.obs.scrape import Scraper
    from repro.obs.slo import BurnRateWindow, RatioSlo, SloEngine, ThresholdSlo
    from repro.obs.tsdb import NS_PER_S
    from repro.sim.clock import SimClock

    def run_once():
        clock = SimClock()
        state = {"total": 0, "good": 0, "latencies": []}

        def collect() -> MetricsRegistry:
            registry = MetricsRegistry()
            registry.counter("selftest_total").set(state["total"])
            registry.counter("selftest_good").set(state["good"])
            histogram = registry.histogram("selftest_latency_us")
            for value in state["latencies"]:
                histogram.observe(value)
            return registry

        scraper = Scraper(clock, collect, cadence_s=1.0)

        class _Host:
            monitor = None

        host = _Host()
        scraper.install(host)
        # 120 simulated seconds: one op per second; ops fail (and slow
        # down 10x) during the [40 s, 80 s) stall window.
        for second in range(1, 121):
            clock.advance_s(1.0)
            stalled = 40 <= second < 80
            state["total"] += 1
            state["good"] += 0 if stalled else 1
            state["latencies"].append(500.0 if stalled else 50.0)
            scraper.tick()
        scraper.uninstall(host)

        slos = [
            RatioSlo(
                "selftest-success",
                good=("selftest_good", {}),
                total=("selftest_total", {}),
                objective=0.99,
                windows=(BurnRateWindow("fast", 60.0, 15.0, 4.0),),
            ),
            ThresholdSlo(
                "selftest-latency",
                basename="selftest_latency_us",
                labels={},
                limit_us=100.0,
                windows=(BurnRateWindow("fast", 30.0, 10.0, 1.5),),
            ),
        ]
        alerts = SloEngine(slos).evaluate(scraper.tsdb)
        return scraper, alerts

    scraper, alerts = run_once()
    by_slo = {}
    for alert in alerts:
        by_slo.setdefault(alert.slo, []).append(alert)
    failures = []
    for slo_name in ("selftest-success", "selftest-latency"):
        fired = by_slo.get(slo_name, [])
        if not fired:
            failures.append(f"{slo_name}: no alert fired during the stall")
            continue
        first = fired[0]
        if not 40 * 10**9 <= first.fired_at_ns <= 90 * 10**9:
            failures.append(
                f"{slo_name}: fired at {first.fired_at_ns} ns, "
                "outside the stall window"
            )
        if not any(a.resolved for a in fired):
            failures.append(f"{slo_name}: never resolved after the stall")

    # Determinism: the whole pipeline must replay bit-identically.
    scraper2, alerts2 = run_once()
    dump = lambda s, a: json.dumps(  # noqa: E731 - local one-shot helper
        {"tsdb": s.tsdb.to_dict(), "alerts": [x.to_dict() for x in a]},
        sort_keys=True,
    )
    if dump(scraper, alerts) != dump(scraper2, alerts2):
        failures.append("re-run produced different Tsdb/alert bytes")

    if failures:
        for failure in failures:
            print(f"monitor selftest FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"monitor selftest OK ({scraper.scrapes} scrapes, "
        f"{len(scraper.tsdb)} series, {len(alerts)} alerts, deterministic)"
    )
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    """Monitor one availability fault arm: scraper + Tsdb + SLO alerts."""
    if args.selftest:
        return _monitor_selftest()

    import json

    from repro.experiments.availability import monitored_arm

    payload = monitored_arm(
        factor=args.factor,
        registrations=args.registrations,
        horizon_s=args.horizon,
        seed=args.seed,
        cadence_s=args.cadence,
    )
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    row = payload["row"]
    monitor = payload["monitor"]
    print(
        f"fault arm x{row['fault_factor']:g}: "
        f"{row['successes']}/{row['attempts']} registrations succeeded "
        f"({monitor['scrapes']} scrapes @ {monitor['cadence_s']:g}s, "
        f"{monitor['series']} series, {len(monitor['fault_windows'])} "
        f"fault windows)"
    )
    print("SLOs:")
    for slo in monitor["slos"]:
        print(f"  {slo}")
    if monitor["alerts"]:
        print("alerts (simulated seconds from arm start):")
        for alert in monitor["alerts"]:
            resolved = (
                f"resolved {alert['resolved_at_s']:9.3f}s"
                if alert["resolved_at_s"] is not None
                else "still firing"
            )
            print(
                f"  [{alert['window']:<4}] {alert['slo']:<24} "
                f"fired {alert['fired_at_s']:9.3f}s  {resolved}  "
                f"peak burn {alert['peak_burn']:.1f}x"
            )
    else:
        print("alerts: none fired")
    print(
        f"{monitor['alerts_in_fault_windows']} alert(s) fired inside an "
        "injected fault window"
    )
    return 0


def _profile_selftest() -> int:
    """Profiler self-check used by CI: the collapsed-stack totals must
    agree bit-for-bit with the span-derived Table III decomposition."""
    from repro.obs.flame import parse_collapsed_text
    from repro.obs.profile import profile_registration
    from repro.paka.deploy import IsolationMode
    from repro.testbed import Testbed, TestbedConfig

    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=0))
    testbed.register(testbed.add_subscriber())  # warm-up (steady state)
    profile, trace = profile_registration(testbed)

    failures = []
    if not trace.outcome.success:
        failures.append(f"registration failed: {trace.outcome.failure_cause}")
    errors = profile.agreement_errors()
    for key, detail in sorted(errors.items()):
        failures.append(f"profile/breakdown disagree on {key}: {detail}")
    if profile.total_ns != profile.root.ns:
        failures.append(
            f"folded self-times sum to {profile.total_ns} ns, "
            f"span tree covers {profile.root.ns} ns"
        )
    text = profile.collapsed()
    if parse_collapsed_text(text) != profile.stacks:
        failures.append("collapsed text did not round-trip")
    for module, row in profile.modules.items():
        if row["eenters"] <= 0:
            failures.append(f"{module}: no EENTERs attributed")

    if failures:
        for failure in failures:
            print(f"profile selftest FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"profile selftest OK ({len(profile.stacks)} stacks, "
        f"{profile.total_ns} ns folded, "
        f"{len(profile.modules)} modules bit-identical to the trace "
        "breakdown)"
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Fold one traced registration into a cycle-attribution flame graph."""
    if args.selftest:
        return _profile_selftest()

    import json

    from repro.obs.profile import profile_registration
    from repro.paka.deploy import IsolationMode
    from repro.testbed import Testbed, TestbedConfig

    isolation = None if args.isolation == "monolithic" else IsolationMode(args.isolation)
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=args.seed))
    for _ in range(args.warmup):
        testbed.register(testbed.add_subscriber())
    profile, trace = profile_registration(testbed)
    errors = profile.agreement_errors()
    if errors:
        for key, detail in sorted(errors.items()):
            print(f"profile/breakdown disagree on {key}: {detail}", file=sys.stderr)
        return 1

    if args.collapsed:
        # Folded stacks, pipe into flamegraph.pl / load into speedscope.
        print(profile.collapsed(), end="")
        return 0 if trace.outcome.success else 1
    if args.json:
        payload = {
            "outcome": {
                "success": trace.outcome.success,
                "session_setup_ms": trace.outcome.session_setup_ms,
                "nas_exchanges": trace.outcome.nas_exchanges,
            },
            "total_ns": profile.total_ns,
            "modules": profile.modules,
            "breakdown": trace.breakdown,
            "stacks": [
                {"stack": list(stack), "ns": profile.stacks[stack]}
                for stack in sorted(profile.stacks)
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0 if trace.outcome.success else 1

    print(
        f"registration folded: {profile.total_ns / 1e6:.2f} ms over "
        f"{len(profile.stacks)} stacks"
    )
    if profile.modules:
        print("Per-module SGX cost attribution (Table III from the fold):")
        header = (
            f"  {'module':<8} {'EENTER':>7} {'EEXIT':>7} {'OCALLs':>7} "
            f"{'trans us':>9} {'shield us':>10} {'copy us':>9} {'host us':>9}"
        )
        print(header)
        for module, row in sorted(profile.modules.items()):
            print(
                f"  {module:<8} {row['eenters']:>7} {row['eexits']:>7} "
                f"{row['ocalls']:>7} {row['transition_us']:>9.1f} "
                f"{row['shield_us']:>10.1f} {row['copy_us']:>9.1f} "
                f"{row['host_us']:>9.1f}"
            )
    print("(use --collapsed for flamegraph.pl input, --json for the full fold)")
    return 0 if trace.outcome.success else 1


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Run registrations and export the testbed's metrics registry."""
    if args.selftest:
        return _metrics_selftest()

    from repro.obs.export import registry_to_json, registry_to_prometheus_text
    from repro.paka.deploy import IsolationMode
    from repro.testbed import Testbed, TestbedConfig

    isolation = None if args.isolation == "monolithic" else IsolationMode(args.isolation)
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=args.seed))
    for _ in range(args.registrations):
        testbed.register(testbed.add_subscriber())
    registry = testbed.collect_metrics()
    if args.format == "prom":
        print(registry_to_prometheus_text(registry), end="")
    else:
        print(registry_to_json(registry))
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    """Partitioned mass-registration campaign (E-CAP / E-SCALE)."""
    from repro.experiments.export import report_to_json
    from repro.experiments.shard import sharded_campaign

    result = sharded_campaign(
        ues=args.ues,
        shards=args.shards,
        jobs=args.jobs,
        seed=args.seed,
        monitor_cadence_s=args.monitor_cadence,
    )
    if args.json:
        print(report_to_json(result.report))
    else:
        print(result.report.format())
    if not result.report.all_checks_ok:
        for check in result.report.failed_checks():
            print("  FAILED " + check.format(), file=sys.stderr)
        return 1
    return 0


def _attack_govern_selftest() -> int:
    """Detector/governor self-check used by CI.

    Replays the seeded-storm detector evaluation (ground-truth confusion
    matrix over every attack class plus a pure queueing collapse), then a
    quick governed survivability pair, and asserts the headline claims:
    the undefended collapse pages on the sojourn SLO, the governor arms
    and recovers legitimate success, and a quiescent governor never acts.
    The JSON document on stdout is deterministic — CI runs the command
    twice and ``cmp``s the bytes; status lines go to stderr.
    """
    import json

    from repro.experiments.survivability import _run_arm
    from repro.obs.detect import evaluate_detector

    failures = []
    evaluation = evaluate_detector(
        seed=29, horizon_s=4.0, legit=6, attack_rate_per_s=40.0
    )
    for scenario in evaluation["scenarios"]:
        if scenario["modal_verdict"] != scenario["expected"]:
            failures.append(
                f"{scenario['expected']}: modal verdict "
                f"{scenario['modal_verdict']}"
            )
    if evaluation["accuracy"] < 0.8:
        failures.append(f"accuracy {evaluation['accuracy']:.3f} < 0.8")

    kwargs = dict(legit=12, horizon_s=5.0, seed=29)
    undefended = _run_arm("none", 400.0, **kwargs)
    governed = _run_arm("governed", 400.0, **kwargs)
    quiescent = _run_arm("governed", 0.0, **kwargs)
    if undefended["sojourn_alerts_fired"] < 1:
        failures.append("undefended collapse fired no sojourn SLO alert")
    actions = governed["governor"]["actions"]
    if not actions or actions[0]["action"] != "arm":
        failures.append("governor never armed under the peak storm")
    if governed["legit_success_rate"] <= undefended["legit_success_rate"]:
        failures.append(
            f"governed success {governed['legit_success_rate']:.3f} did "
            f"not beat undefended {undefended['legit_success_rate']:.3f}"
        )
    if quiescent["governor"]["actions"]:
        failures.append("quiescent governor took actions with no storm")

    payload = {
        "evaluation": evaluation,
        "governed": {
            "actions": actions,
            "detect_latency_s": governed["detect_latency_s"],
            "legit_success_rate": governed["legit_success_rate"],
            "quiescent_actions": quiescent["governor"]["actions"],
            "sojourn_alerts_fired": governed["sojourn_alerts_fired"],
            "undefended_success_rate": undefended["legit_success_rate"],
        },
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"govern selftest FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"govern selftest OK (accuracy {evaluation['accuracy']:.2f}, "
        f"detect latency {governed['detect_latency_s']:.3f}s, governed "
        f"{governed['legit_success_rate']:.2f} vs undefended "
        f"{undefended['legit_success_rate']:.2f})",
        file=sys.stderr,
    )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    """Adversarial signaling campaign: storms × admission defenses (E-ATTACK)."""
    if args.selftest:
        return _attack_govern_selftest()

    from repro.experiments.export import report_to_json
    from repro.experiments.survivability import DEFENSES, survivability_experiment

    if args.defenses:
        defenses = tuple(name.strip() for name in args.defenses.split(","))
    elif args.govern:
        defenses = ("none", "governed")
    else:
        defenses = DEFENSES
    unknown = [name for name in defenses if name not in DEFENSES]
    if unknown:
        print(
            f"unknown defense(s) {', '.join(unknown)}; "
            f"choose from {', '.join(DEFENSES)}",
            file=sys.stderr,
        )
        return 2
    rates = tuple(float(rate) for rate in args.rates.split(","))
    report = survivability_experiment(
        legit=args.legit,
        horizon_s=args.horizon,
        seed=args.seed,
        attack_rates=rates,
        defenses=defenses,
    )
    if args.json:
        print(report_to_json(report))
    else:
        print(report.format())
    if not report.all_checks_ok:
        for check in report.failed_checks():
            print("  FAILED " + check.format(), file=sys.stderr)
        return 1
    return 0


def _run_traced_arm(args: argparse.Namespace) -> Dict[str, object]:
    """One traced survivability arm for the ``traces`` command."""
    from repro.experiments.survivability import _run_arm

    return _run_arm(
        args.defense,
        args.rate,
        legit=args.legit,
        horizon_s=args.horizon,
        seed=args.seed,
        trace_sample=args.sample,
    )


def _traces_digest(row: Dict[str, object], top: int) -> Dict[str, object]:
    from repro.obs.analytics import slowest_traces_digest

    return slowest_traces_digest(
        row["_trace_store"],
        top=top,
        module_servers=row["_module_servers"],
        module_runtimes=row["_module_runtimes"],
    )


def _find_trace_record(
    store_dump: Dict[str, object], trace_id: str
) -> Optional[Dict[str, object]]:
    for record in store_dump.get("records", ()):
        if record["trace_id"] == trace_id:
            return record
    return None


def _traces_selftest() -> int:
    """Tracing self-check used by CI (the E-TRACE2 acceptance scenario).

    Runs the undefended 400/s queueing collapse with tracing armed and
    asserts the full pipeline: the sojourn SLO alert cites exemplar
    trace ids, at least one cited id resolves to a complete cross-NF
    tree in the store, the tree's integer-ns per-module decomposition
    agrees exactly with the float-µs ``registration_breakdown``
    (``round(us * 1000) == ns`` for every figure), and tracing spent
    zero simulated nanoseconds (traced and untraced arms end on the
    same clock reading).  The JSON document on stdout is deterministic —
    CI runs the command twice and ``cmp``s the bytes; status lines go
    to stderr.
    """
    import json

    from repro.experiments.survivability import _run_arm
    from repro.obs.analytics import registration_breakdown_ns, slowest_traces_digest
    from repro.obs.trace import registration_breakdown, span_from_dict

    failures: List[str] = []
    kwargs = dict(legit=12, horizon_s=5.0, seed=29)
    traced = _run_arm("none", 400.0, trace_sample=8, **kwargs)
    untraced = _run_arm("none", 400.0, **kwargs)

    # Tracing must be free on the simulated clock.
    if traced["final_clock_ns"] != untraced["final_clock_ns"]:
        failures.append(
            f"traced arm clock {traced['final_clock_ns']} != "
            f"untraced {untraced['final_clock_ns']}"
        )

    store_dump = traced["_trace_store"]
    module_servers = traced["_module_servers"]
    module_runtimes = traced["_module_runtimes"]

    # The collapse must page on the sojourn SLO and cite exemplars.
    sojourn_alerts = [
        alert for alert in traced["_alerts"]
        if alert["slo"].startswith("registration-sojourn")
    ]
    if not sojourn_alerts:
        failures.append("queueing collapse fired no sojourn SLO alert")
    cited = sorted(
        {tid for alert in sojourn_alerts for tid in alert["exemplar_trace_ids"]}
    )
    if sojourn_alerts and not cited:
        failures.append("sojourn alert cited no exemplar trace ids")

    # At least one cited exemplar must resolve to a stored cross-NF tree.
    resolved = [
        record
        for record in map(lambda t: _find_trace_record(store_dump, t), cited)
        if record is not None
    ]
    if cited and not resolved:
        failures.append("no cited exemplar trace id resolved in the store")
    for record in resolved[:1]:
        servers = {
            str(node["tags"].get("server"))
            for node in _walk_tree(record["root"])
            if node["kind"] == "sbi.server"
        }
        missing = set(module_servers.values()) - servers
        if missing:
            failures.append(
                f"resolved tree is not cross-NF: no server spans for "
                f"{', '.join(sorted(missing))}"
            )

    # Integer-ns analytics must agree exactly with the float-µs
    # breakdown on every stored tree: round(us * 1000) == ns.
    checked = 0
    for record in store_dump.get("records", ()):
        ns = registration_breakdown_ns(
            record["root"], module_servers, module_runtimes
        )
        us = registration_breakdown(
            span_from_dict(record["root"]), module_servers, module_runtimes
        )
        for module, row_ns in ns.items():
            row_us = us[module]
            pairs = [
                ("lf", "lf_us", "lf_ns"), ("lt", "lt_us", "lt_ns"),
                ("ln", "ln_us", "ln_ns"), ("r", "r_us", "r_ns"),
                ("shield", "shield_us", "shield_ns"),
                ("copy", "copy_us", "copy_ns"),
                ("host", "host_us", "host_ns"),
                ("transition", "transition_us", "transition_ns"),
            ]
            for label, us_key, ns_key in pairs:
                if round(row_us[us_key] * 1000) != row_ns[ns_key]:
                    failures.append(
                        f"{record['trace_id'][:8]} {module} {label}: "
                        f"us {row_us[us_key]} !~ ns {row_ns[ns_key]}"
                    )
            for count_key in ("requests", "eenters", "eexits", "ocalls"):
                if row_us[count_key] != row_ns[count_key]:
                    failures.append(
                        f"{record['trace_id'][:8]} {module} {count_key}: "
                        f"{row_us[count_key]} != {row_ns[count_key]}"
                    )
        checked += 1
    if not checked:
        failures.append("trace store kept no records to cross-check")
    if store_dump.get("kept_tail", 0) < 1:
        failures.append("collapse kept no tail (failed/deadline) traces")

    digest = slowest_traces_digest(
        store_dump,
        top=10,
        module_servers=module_servers,
        module_runtimes=module_runtimes,
    )
    # Critical paths must start at the registration root and account
    # for the full trace duration at the first frame.
    for entry in digest["slowest"]:
        path = entry["critical_path"]
        if not path or path[0]["kind"] != "registration":
            failures.append(f"{entry['trace_id'][:8]}: path missing root")
        elif path[0]["ns"] != entry["duration_ns"]:
            failures.append(
                f"{entry['trace_id'][:8]}: root frame {path[0]['ns']} ns "
                f"!= duration {entry['duration_ns']} ns"
            )

    payload = {
        "digest": digest,
        "sojourn_alerts": sojourn_alerts,
        "cited_trace_ids": cited,
        "resolved": len(resolved),
        "cross_checked": checked,
        "final_clock_ns": traced["final_clock_ns"],
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if failures:
        for failure in failures:
            print(f"traces selftest FAILED: {failure}", file=sys.stderr)
        return 1
    print(
        f"traces selftest OK ({store_dump['seen']} traces seen, "
        f"{len(store_dump['records'])} kept "
        f"({store_dump['kept_tail']} tail), {len(cited)} cited, "
        f"{checked} trees cross-checked exactly)",
        file=sys.stderr,
    )
    return 0


def _walk_tree(node: Dict[str, object]):
    yield node
    for child in node["children"]:
        yield from _walk_tree(child)


def _cmd_traces(args: argparse.Namespace) -> int:
    """Distributed-trace analytics over a traced survivability arm."""
    import json

    if args.selftest:
        return _traces_selftest()

    from repro.obs.trace import format_span_tree, span_from_dict

    row = _run_traced_arm(args)
    store_dump = row["_trace_store"]

    if args.trace_id:
        record = _find_trace_record(store_dump, args.trace_id)
        if record is None:
            print(
                f"trace {args.trace_id} not in store "
                f"({len(store_dump['records'])} kept of "
                f"{store_dump['seen']} seen)",
                file=sys.stderr,
            )
            return 2
        if args.json:
            print(json.dumps(
                {"schema": 1, "trace": record}, indent=2, sort_keys=True,
            ))
            return 0
        print(
            f"trace {record['trace_id']} supi={record['supi']} "
            f"attempt={record['attempt']} reason={record['reason']} "
            f"sojourn={record['sojourn_ns'] / 1e6:.3f} ms"
        )
        print("\n".join(format_span_tree(span_from_dict(record["root"]))))
        return 0

    digest = _traces_digest(row, args.slowest)
    if args.json:
        print(json.dumps(digest, indent=2, sort_keys=True))
        return 0

    print(
        f"arm: defense={args.defense} rate={args.rate:g}/s "
        f"legit={args.legit} horizon={args.horizon:g}s seed={args.seed}"
    )
    print(
        f"store: {digest['seen']} seen, {digest['kept']} kept "
        f"({digest['kept_tail']} tail + {digest['kept_head']} head), "
        f"{digest['evicted']} evicted"
    )
    sojourn_alerts = [
        alert for alert in row["_alerts"]
        if alert["slo"].startswith("registration-sojourn")
    ]
    cited = sorted(
        {tid for alert in sojourn_alerts for tid in alert["exemplar_trace_ids"]}
    )
    print(
        f"alerts: {len(row['_alerts'])} fired, {len(sojourn_alerts)} "
        f"sojourn, {len(cited)} exemplar trace ids cited"
    )
    print(f"\nslowest {len(digest['slowest'])} traces:")
    for rank, entry in enumerate(digest["slowest"], start=1):
        mark = " *" if entry["trace_id"] in cited else ""
        print(
            f"  {rank:>2}. {entry['trace_id'][:16]} "
            f"{entry['duration_ns'] / 1e6:>9.3f} ms  "
            f"{entry['reason']:<13} supi={entry['supi']} "
            f"attempt={entry['attempt']}{mark}"
        )
        path = entry["critical_path"]
        hot = max(path, key=lambda frame: frame["self_ns"])
        chain = " > ".join(frame["name"] for frame in path[:6])
        if len(path) > 6:
            chain += " > ..."
        print(f"      path: {chain}")
        print(
            f"      hottest frame: {hot['name']} ({hot['kind']}) "
            f"self {hot['self_ns'] / 1e6:.3f} ms of "
            f"{hot['ns'] / 1e6:.3f} ms"
        )
    if cited:
        print("\n  * cited as an exemplar by a sojourn SLO alert")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    report = _run_experiment(args.command, args)
    print(report.format())
    if report.series and getattr(args, "plot", False):
        from repro.experiments.render import render_report_figures

        print()
        print(render_report_figures(report))
    if not report.all_checks_ok:
        print("\nFAILED paper-shape checks:", file=sys.stderr)
        for check in report.failed_checks():
            print("  " + check.format(), file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Towards Shielding 5G Control Plane "
        "Functions' (DSN 2024): run the paper's experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    register = sub.add_parser("register", help="register UEs through a testbed")
    register.add_argument(
        "--isolation",
        choices=["monolithic", "container", "sgx", "secure-vm"],
        default="sgx",
    )
    register.add_argument("--count", type=int, default=1)
    register.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser(
        "trace",
        help="trace one registration: span tree + Fig 9 / Table III breakdown",
    )
    trace.add_argument(
        "--isolation",
        choices=["monolithic", "container", "sgx", "secure-vm"],
        default="sgx",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--warmup", type=int, default=1,
        help="untraced registrations before the traced one (steady state)",
    )
    trace.add_argument(
        "--json", action="store_true",
        help="emit the span tree and breakdown as JSON",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run registrations and export the metrics registry",
    )
    metrics.add_argument(
        "--isolation",
        choices=["monolithic", "container", "sgx", "secure-vm"],
        default="sgx",
    )
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--registrations", type=int, default=3)
    metrics.add_argument(
        "--format", choices=["json", "prom"], default="json",
        help="export format: JSON document or Prometheus exposition text",
    )
    metrics.add_argument(
        "--selftest", action="store_true",
        help="exporter round-trip self-check (no testbed; used by CI)",
    )

    monitor = sub.add_parser(
        "monitor",
        help="continuously monitor one fault arm: scraper + Tsdb + SLO "
        "burn-rate alerts with simulated timestamps",
    )
    monitor.add_argument(
        "--factor", type=float, default=2.0,
        help="fault-rate multiplier (x BASELINE_RATES; 0 = fault-free)",
    )
    monitor.add_argument("--registrations", type=int, default=120)
    monitor.add_argument(
        "--horizon", type=float, default=180.0,
        help="arm duration in simulated seconds",
    )
    monitor.add_argument("--seed", type=int, default=23)
    monitor.add_argument(
        "--cadence", type=float, default=1.0,
        help="scrape cadence in simulated seconds",
    )
    monitor.add_argument(
        "--json", action="store_true",
        help="emit the row, SLOs, alerts and fault windows as JSON "
        "(byte-identical for a fixed seed)",
    )
    monitor.add_argument(
        "--selftest", action="store_true",
        help="scraper/Tsdb/SLO pipeline self-check (no testbed; used by CI)",
    )

    profile = sub.add_parser(
        "profile",
        help="fold one traced registration into a cycle-attribution "
        "flame graph (collapsed-stack output)",
    )
    profile.add_argument(
        "--isolation",
        choices=["monolithic", "container", "sgx", "secure-vm"],
        default="sgx",
    )
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--warmup", type=int, default=1,
        help="untraced registrations before the profiled one (steady state)",
    )
    profile.add_argument(
        "--collapsed", action="store_true",
        help="emit folded stacks for flamegraph.pl / speedscope",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the fold (stacks + per-module totals) as JSON",
    )
    profile.add_argument(
        "--selftest", action="store_true",
        help="profiler-vs-trace exactness self-check (used by CI)",
    )

    capacity = sub.add_parser(
        "capacity",
        help="partitioned mass-registration campaign: shard the UE "
        "population over replica control-plane slices and merge the "
        "per-shard simulations into one report",
    )
    capacity.add_argument("--ues", type=int, default=10_000)
    capacity.add_argument(
        "--shards", type=int, default=4,
        help="control-plane shards (1 = the unsharded E-CAP campaign)",
    )
    capacity.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the shard arms (0 = one per "
        "schedulable CPU); the merged report is byte-identical for any N",
    )
    capacity.add_argument("--seed", type=int, default=7)
    capacity.add_argument(
        "--monitor-cadence", type=float, default=None, metavar="S",
        help="install a per-shard scraper at this simulated cadence and "
        "merge the Tsdb series (shard label added); default off",
    )
    capacity.add_argument(
        "--json", action="store_true",
        help="emit the merged report as JSON (byte-identical per seed)",
    )

    attack = sub.add_parser(
        "attack",
        help="adversarial signaling campaign: seeded storms (SUCI replay, "
        "forged-AUTS resync, NAS fuzz, botnet registration) against the "
        "AMF's admission defenses; prints survivability curves",
    )
    attack.add_argument(
        "--legit", type=int, default=30,
        help="legitimate UEs paced over the horizon per arm",
    )
    attack.add_argument(
        "--horizon", type=float, default=12.0,
        help="arm duration in simulated seconds",
    )
    attack.add_argument("--seed", type=int, default=29)
    attack.add_argument(
        "--rates", default="0,240,400", metavar="R,R,...",
        help="attack arrival rates per second (comma-separated; 0 = "
        "disarmed control arm)",
    )
    attack.add_argument(
        "--defenses", default=None, metavar="D,D,...",
        help="admission configs to sweep (subset of none,bucket,guard,"
        "breaker,all,governed; default all of them)",
    )
    attack.add_argument(
        "--govern", action="store_true",
        help="sweep only the undefended and alert-armed (governed) arms",
    )
    attack.add_argument(
        "--selftest", action="store_true",
        help="detector/governor self-check: seeded-storm confusion "
        "matrix + governed recovery, deterministic JSON on stdout "
        "(used by CI)",
    )
    attack.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON (byte-identical per seed)",
    )

    traces = sub.add_parser(
        "traces",
        help="distributed-trace analytics: run a traced survivability "
        "arm, rank the slowest stored traces with critical paths, and "
        "resolve alert-cited exemplar trace ids to full cross-NF trees",
    )
    traces.add_argument(
        "--defense", choices=["none", "bucket", "guard", "breaker", "all",
                              "governed"],
        default="none",
        help="admission config for the traced arm",
    )
    traces.add_argument(
        "--rate", type=float, default=400.0,
        help="attack arrival rate per second (400 = queueing collapse)",
    )
    traces.add_argument("--legit", type=int, default=12)
    traces.add_argument("--horizon", type=float, default=5.0)
    traces.add_argument("--seed", type=int, default=29)
    traces.add_argument(
        "--sample", type=int, default=8, metavar="N",
        help="head-sample 1 in N healthy traces (failed/deadline traces "
        "are always kept)",
    )
    traces.add_argument(
        "--slowest", type=int, default=10, metavar="N",
        help="rank the N slowest stored traces in the digest",
    )
    traces.add_argument(
        "--trace-id", default=None, metavar="ID",
        help="resolve one trace id to its full span tree instead of "
        "the ranked digest",
    )
    traces.add_argument(
        "--json", action="store_true",
        help="emit the digest (or resolved trace) as JSON "
        "(byte-identical per seed)",
    )
    traces.add_argument(
        "--selftest", action="store_true",
        help="tracing self-check: alert-to-trace exemplar resolution + "
        "exact integer-ns breakdown agreement, deterministic JSON on "
        "stdout (used by CI)",
    )

    for name, description in _EXPERIMENTS.items():
        experiment = sub.add_parser(name, help=description)
        experiment.add_argument("--registrations", type=int, default=60)
        experiment.add_argument("--iterations", type=int, default=5)
        experiment.add_argument("--max-ues", type=int, default=3)
        experiment.add_argument(
            "--plot", action="store_true",
            help="render the measured distributions as ASCII box plots",
        )
        experiment.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="run independent experiment arms over N worker processes "
            "(0 = one per CPU); results are byte-identical to --jobs 1 "
            "because every arm owns its own seeded testbed",
        )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "register":
            return _cmd_register(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "monitor":
            return _cmd_monitor(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "capacity":
            return _cmd_capacity(args)
        if args.command == "attack":
            return _cmd_attack(args)
        if args.command == "traces":
            return _cmd_traces(args)
        return _cmd_experiment(args)
    except BrokenPipeError:  # output piped into head/less and closed
        return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
