"""Counters, gauges and bounded histograms behind one registry.

The primitives deliberately reuse :class:`~repro.sim.metrics.RunningStats`
and :class:`~repro.sim.metrics.BoundedSeries`: histogram aggregates stay
exact over every observation ever made while the raw window is bounded,
which is the same retention contract the HTTP servers already use for
their latency series.  A histogram can also *adopt* a live
``BoundedSeries`` (``registry.histogram_from_series``), so collection
from a running testbed is a pull — zero cost on the simulation hot path.

Metrics are identified by ``(name, labels)``; ``registry.counter(...)``
is get-or-create, so instrumentation code never needs to pre-declare.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.experiments.stats import percentiles
from repro.sim.metrics import BoundedSeries

LabelItems = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelItems]

# Label-kwargs -> canonical sorted key tuple.  Every scrape re-derives
# the same few hundred keys (fixed call sites, fixed label sets), so the
# sort + str() normalisation runs once per distinct label set instead of
# once per metric lookup.  Keyed on the raw insertion-ordered items; the
# cache is tiny in practice (component/NF/host names) but bounded anyway.
_LABEL_KEY_CACHE: Dict[tuple, LabelItems] = {}
_LABEL_KEY_CACHE_CAP = 4096


def _label_key(labels: Dict[str, str]) -> LabelItems:
    try:
        raw = tuple(labels.items())
        cached = _LABEL_KEY_CACHE.get(raw)
    except TypeError:  # unhashable label value: normalise without caching
        return tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    if cached is None:
        if len(_LABEL_KEY_CACHE) >= _LABEL_KEY_CACHE_CAP:
            _LABEL_KEY_CACHE.clear()
        cached = _LABEL_KEY_CACHE[raw] = tuple(
            sorted((str(k), str(v)) for k, v in labels.items())
        )
    return cached


class Counter:
    """A monotonically increasing integer with reset detection.

    ``value`` is the exposed cumulative total; ``raw`` remembers the last
    snapshot handed to :meth:`set`.  When a producer restarts (an NF dies
    and revives under fault injection) its live counters start over from
    zero — Prometheus-style, a *decrease* of the raw snapshot is treated
    as a reset: the pre-reset total is banked and the post-reset value
    counts on top, so ``value`` never goes backwards.
    """

    __slots__ = ("name", "labels", "value", "raw")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0
        self.raw = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount
        self.raw += amount

    def set(self, value: int) -> None:
        """Snapshot-style assignment (pull collection from live objects).

        Monotone snapshot sequences behave as plain assignment
        (``value`` tracks the snapshot exactly); a snapshot below the
        previous one marks a producer restart and accumulates instead.
        """
        if value < 0:
            raise ValueError(
                f"counter {self.name} cannot hold a negative value ({value})"
            )
        if value < self.raw:  # producer restarted: bank the old total
            self.value += value
        else:
            self.value += value - self.raw
        self.raw = value


class Gauge:
    """A point-in-time value that may move either way."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"gauge {self.name} cannot hold non-finite value {value!r}"
            )
        self.value = value


class Histogram:
    """Distribution metric over a (possibly adopted) bounded window.

    ``exemplars`` is an optional adopted mapping of OpenMetrics ``le``
    label strings to ``(value, trace_id, observed_at_ns)`` — the most
    recent traced observation to land in each bucket.  Like the series,
    it is adopted live (the producer owns and mutates it); ``None`` (the
    default) means the producer records no exemplars and export emits
    plain bucket lines.
    """

    __slots__ = ("name", "labels", "series", "exemplars")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        cap: Optional[int] = None,
        series: Optional[BoundedSeries] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.series = series if series is not None else BoundedSeries(cap)
        self.exemplars: Optional[Dict[str, Tuple[float, str, int]]] = None

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histogram {self.name} cannot observe non-finite value "
                f"{value!r}"
            )
        self.series.append(value)

    # Aggregates are exact over everything ever observed; quantiles come
    # from the retained window (all observations when uncapped).
    @property
    def count(self) -> int:
        return self.series.stats.count

    @property
    def total(self) -> float:
        return self.series.stats.total

    @property
    def mean(self) -> float:
        return self.series.stats.mean

    @property
    def minimum(self) -> Optional[float]:
        return self.series.stats.minimum

    @property
    def maximum(self) -> Optional[float]:
        return self.series.stats.maximum

    def quantiles(self, qs: Tuple[float, ...] = (50.0, 95.0, 99.0)):
        return percentiles(list(self.series), qs)


class MetricsRegistry:
    """Get-or-create home of every metric, iterable for export."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # ------------------------------------------------------------ create

    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter(name, key[1])
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge(name, key[1])
        return metric

    def histogram(
        self, name: str, cap: Optional[int] = None, **labels: str
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, key[1], cap=cap)
        return metric

    def histogram_from_series(
        self, name: str, series: BoundedSeries, **labels: str
    ) -> Histogram:
        """Adopt a live series (pull collection; no copy, no hot-path cost).

        Handing in a *different* series object for an existing metric
        re-adopts it: a restarted producer allocates fresh series, and a
        persistent registry must follow the live object rather than keep
        reading the dead one.
        """
        key = (name, _label_key(labels))
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(name, key[1], series=series)
        elif metric.series is not series:
            metric.series = series
        return metric

    # ----------------------------------------------------------- iterate

    def counters(self) -> List[Counter]:
        return [self._counters[key] for key in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[key] for key in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        return [self._histograms[key] for key in sorted(self._histograms)]

    # Insertion-order views for consumers that key on (name, labels)
    # themselves (the Tsdb ingest path) and don't need the sorted export
    # order — skipping the three per-snapshot sorts matters at scrape
    # cadence.
    def iter_counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def iter_gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def iter_histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def __iter__(self) -> Iterator[object]:
        yield from self.counters()
        yield from self.gauges()
        yield from self.histograms()
