"""Cycle-attribution profiler: span trees folded into flame graphs.

One traced registration (:func:`repro.obs.collect.trace_registration`)
already carries the whole cost story — every span is an interval of
simulated time, and each ``sgx.ocall`` span is tagged with the fused
cost components (``transition_ns`` / ``shield_ns`` / ``copy_ns`` /
``host_ns``).  This module folds that tree into collapsed stacks whose
self-time values are exact integer nanoseconds, splitting every OCALL
into its component sub-frames, so the Table III EENTER/EEXIT budget
renders as a flame graph per module.

Exactness contract: the per-module accumulation below replicates
:func:`~repro.obs.trace.registration_breakdown`'s ``sgx.ocall`` branch —
same walk order, same expressions — so ``RegistrationProfile.modules``
agrees **bit-for-bit** with the span-derived Table III numbers that
``repro trace`` prints (the ``repro profile --selftest`` check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.obs.flame import StackKey, collapsed_text, sanitize_frame
from repro.obs.trace import Span, registration_breakdown

#: OCALL component sub-frames, in emission order (tag name per frame).
COMPONENT_TAGS: Tuple[Tuple[str, str], ...] = (
    ("transition", "transition_ns"),
    ("shield", "shield_ns"),
    ("copy", "copy_ns"),
    ("host", "host_ns"),
)


def _frame_for(span: Span, runtime_to_module: Mapping[str, str]) -> str:
    """Flame-graph frame label for one span."""
    if span.kind == "sgx.ocall":
        module = runtime_to_module.get(
            str(span.tags.get("runtime")), str(span.tags.get("runtime"))
        )
        return sanitize_frame(f"{module}:ocall:{span.name}")
    if not span.kind:
        return sanitize_frame(span.name)
    if span.name in (span.kind, "window"):
        return sanitize_frame(span.kind)
    return sanitize_frame(f"{span.kind}:{span.name}")


def _new_module_row() -> Dict[str, float]:
    return {
        "ocalls": 0, "eenters": 0, "eexits": 0,
        "transition_us": 0.0, "shield_us": 0.0,
        "copy_us": 0.0, "host_us": 0.0,
        "transition_ns": 0, "shield_ns": 0, "copy_ns": 0, "host_ns": 0,
    }


@dataclass
class RegistrationProfile:
    """One folded registration: collapsed stacks + per-module totals."""

    root: Span
    # Collapsed stacks: frame tuple -> exact self-time in simulated ns.
    stacks: Dict[StackKey, int] = field(default_factory=dict)
    # Per-module Table III view (counts + component µs/ns); the µs fields
    # are accumulated exactly like registration_breakdown's.
    modules: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # The independent span-derived decomposition (``repro trace`` view).
    breakdown: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def total_ns(self) -> int:
        return sum(self.stacks.values())

    def collapsed(self) -> str:
        return collapsed_text(self.stacks)

    def module_transition_ns(self, module: str) -> int:
        """Transition self-time for one module, recomputed from the
        collapsed stacks (the flame-graph-side number the per-module
        totals must agree with)."""
        prefix = sanitize_frame(f"{module}:ocall:")
        return sum(
            value
            for stack, value in self.stacks.items()
            if len(stack) >= 2
            and stack[-1] == "transition"
            and stack[-2].startswith(prefix)
        )

    def agreement_errors(self) -> Dict[str, str]:
        """Exactness check against :func:`registration_breakdown`.

        Empty dict = the profiler and the span-derived Table III numbers
        agree bit-for-bit (counts, component µs, and the collapsed-stack
        transition totals).
        """
        errors: Dict[str, str] = {}
        for module, row in self.breakdown.items():
            mine = self.modules.get(module, _new_module_row())
            for key in ("ocalls", "eenters", "eexits",
                        "transition_us", "shield_us", "copy_us", "host_us"):
                if mine[key] != row[key]:
                    errors[f"{module}.{key}"] = (
                        f"profile={mine[key]!r} breakdown={row[key]!r}"
                    )
            stack_ns = self.module_transition_ns(module)
            if stack_ns != mine["transition_ns"]:
                errors[f"{module}.stack_transition_ns"] = (
                    f"stacks={stack_ns} modules={mine['transition_ns']}"
                )
        return errors


def fold_registration(
    root: Span,
    module_servers: Mapping[str, str],
    module_runtimes: Optional[Mapping[str, str]] = None,
) -> RegistrationProfile:
    """Fold one registration span tree into a :class:`RegistrationProfile`.

    ``module_servers`` / ``module_runtimes`` are the same maps
    :func:`registration_breakdown` takes (module short name → HTTP server
    name / enclave runtime name).
    """
    runtime_to_module = {
        runtime: module for module, runtime in (module_runtimes or {}).items()
    }
    profile = RegistrationProfile(root=root)
    stacks = profile.stacks
    modules = profile.modules

    def fold(span: Span, stack: StackKey) -> None:
        stack = stack + (_frame_for(span, runtime_to_module),)
        if span.kind == "sgx.ocall":
            module = runtime_to_module.get(str(span.tags.get("runtime")))
            row = None
            if module is not None:
                row = modules.get(module)
                if row is None:
                    row = modules[module] = _new_module_row()
                # Lockstep with registration_breakdown: one OCALL is one
                # EEXIT + one EENTER unless exitless, and the component
                # microseconds accumulate per span in walk order.
                row["ocalls"] += 1
                if not span.tags.get("exitless"):
                    row["eenters"] += 1
                    row["eexits"] += 1
                    row["transition_us"] += (
                        span.tags.get("transition_ns", 0) / 1_000.0
                    )
                row["shield_us"] += span.tags.get("shield_ns", 0) / 1_000.0
                row["copy_us"] += span.tags.get("copy_ns", 0) / 1_000.0
                row["host_us"] += span.tags.get("host_ns", 0) / 1_000.0
            component_ns = 0
            for frame, tag in COMPONENT_TAGS:
                ns = int(span.tags.get(tag, 0))
                if ns <= 0:
                    continue
                component_ns += ns
                key = stack + (frame,)
                stacks[key] = stacks.get(key, 0) + ns
                if row is not None:
                    row[f"{tag}"] = row.get(tag, 0) + ns
            residual = span.ns - component_ns
            if residual > 0:
                stacks[stack] = stacks.get(stack, 0) + residual
        else:
            self_ns = span.ns - sum(child.ns for child in span.children)
            if self_ns > 0:
                stacks[stack] = stacks.get(stack, 0) + self_ns
        for child in span.children:
            fold(child, stack)

    fold(root, ())
    profile.breakdown = registration_breakdown(
        root, module_servers=module_servers, module_runtimes=module_runtimes
    )
    return profile


def profile_registration(
    testbed: Any, establish_session: bool = False
) -> Tuple[RegistrationProfile, Any]:
    """Trace one registration on ``testbed`` and fold it.

    Returns ``(profile, trace)`` where ``trace`` is the underlying
    :class:`~repro.obs.collect.RegistrationTrace` (outcome, breakdown,
    SgxStats deltas).
    """
    from repro.obs.collect import trace_registration

    trace = trace_registration(testbed, establish_session=establish_session)
    modules = dict(testbed.paka.modules) if testbed.paka is not None else {}
    profile = fold_registration(
        trace.root,
        module_servers={name: m.server.name for name, m in modules.items()},
        module_runtimes={name: m.runtime.name for name, m in modules.items()},
    )
    return profile, trace
