"""Tail-based trace analytics over stored registration trees.

Consumers here work on the JSON-ready dict trees a
:class:`~repro.obs.trace.TraceStore` snapshots (``Span.to_dict`` form),
so they run identically on live spans, shard-worker dumps and
re-loaded artifacts.  Three extractions:

* :func:`registration_breakdown_ns` — the per-module decomposition of
  :func:`~repro.obs.trace.registration_breakdown` in exact integer
  nanoseconds.  Span boundaries are integer clock reads, so every
  figure here is exact; the float-µs breakdown is the same sums divided
  by 1000, and the two must agree at ``round(us * 1000) == ns`` — a
  cross-check the traces selftest asserts.
* :func:`critical_path` — the root→leaf chain that dominates a trace's
  duration (largest child by span length at every level; ties break on
  earliest start, then tree order).
* :func:`slowest_traces_digest` — a deterministic, JSON-stable digest
  of a store's slowest traces with their critical paths, the artifact
  EXPERIMENTS.md E-TRACE2 commits and CI byte-compares across
  ``--jobs``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Mapping, Optional

DIGEST_SCHEMA = 1


def _as_tree(root: Any) -> Dict[str, Any]:
    """Accept either a live Span or its ``to_dict`` tree."""
    return root if isinstance(root, dict) else root.to_dict()


def _walk(node: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    yield node
    for child in node["children"]:
        yield from _walk(child)


def _node_ns(node: Mapping[str, Any]) -> int:
    return int(node["end_ns"]) - int(node["start_ns"])


def _child_of_kind(
    node: Mapping[str, Any], kind: str
) -> Optional[Dict[str, Any]]:
    for child in node["children"]:
        if child["kind"] == kind:
            return child
    return None


def registration_breakdown_ns(
    root: Any,
    module_servers: Mapping[str, str],
    module_runtimes: Optional[Mapping[str, str]] = None,
) -> Dict[str, Dict[str, int]]:
    """Per-module decomposition of one registration tree, integer ns.

    Same traversal and attribution rules as
    :func:`~repro.obs.trace.registration_breakdown` (L_F/L_T from the
    server spans, R from the client spans, SGX transition costs from the
    OCALL tags), but summing the raw integer nanoseconds — no float in
    sight, so cross-shard digests can be byte-compared.
    """
    tree = _as_tree(root)
    server_to_module = {server: module for module, server in module_servers.items()}
    runtime_to_module = {
        runtime: module for module, runtime in (module_runtimes or {}).items()
    }
    breakdown: Dict[str, Dict[str, int]] = {
        module: {
            "lf_ns": 0, "lt_ns": 0, "ln_ns": 0, "r_ns": 0,
            "requests": 0, "eenters": 0, "eexits": 0, "ocalls": 0,
            "shield_ns": 0, "copy_ns": 0, "host_ns": 0,
            "transition_ns": 0,
        }
        for module in module_servers
    }

    for node in _walk(tree):
        kind = node["kind"]
        tags = node["tags"]
        if kind == "sbi.server":
            module = server_to_module.get(str(tags.get("server")))
            if module is None:
                continue
            row = breakdown[module]
            lt_node = _child_of_kind(node, "L_T")
            if lt_node is None:
                continue
            lf_node = _child_of_kind(lt_node, "L_F")
            row["requests"] += 1
            row["lt_ns"] += _node_ns(lt_node)
            if lf_node is not None:
                row["lf_ns"] += _node_ns(lf_node)
            row["ln_ns"] = row["lt_ns"] - row["lf_ns"]
        elif kind == "sbi.request":
            module = server_to_module.get(str(tags.get("dst")))
            if module is not None:
                breakdown[module]["r_ns"] += _node_ns(node)
        elif kind == "sgx.ocall":
            module = runtime_to_module.get(str(tags.get("runtime")))
            if module is None:
                continue
            row = breakdown[module]
            row["ocalls"] += 1
            if not tags.get("exitless"):
                row["eenters"] += 1
                row["eexits"] += 1
                row["transition_ns"] += int(tags.get("transition_ns", 0))
            row["shield_ns"] += int(tags.get("shield_ns", 0))
            row["copy_ns"] += int(tags.get("copy_ns", 0))
            row["host_ns"] += int(tags.get("host_ns", 0))
    return breakdown


def critical_path(root: Any) -> List[Dict[str, Any]]:
    """Root→leaf frames of the trace's dominant chain.

    At every level the longest child is taken (ties: earliest
    ``start_ns``, then tree order).  Each frame carries the span's name,
    kind, total ns and ``self_ns`` — the part of the span not covered by
    any child, i.e. the frame's own contribution to the path.
    """
    frames: List[Dict[str, Any]] = []
    node = _as_tree(root)
    while node is not None:
        children = node["children"]
        frames.append({
            "name": node["name"],
            "kind": node["kind"],
            "ns": _node_ns(node),
            "self_ns": _node_ns(node) - sum(_node_ns(c) for c in children),
        })
        best = None
        for child in children:
            if best is None:
                best = child
                continue
            child_ns, best_ns = _node_ns(child), _node_ns(best)
            if child_ns > best_ns or (
                child_ns == best_ns
                and int(child["start_ns"]) < int(best["start_ns"])
            ):
                best = child
        node = best
    return frames


def slowest_traces_digest(
    store_dump: Mapping[str, Any],
    top: int = 10,
    module_servers: Optional[Mapping[str, str]] = None,
    module_runtimes: Optional[Mapping[str, str]] = None,
) -> Dict[str, Any]:
    """Deterministic digest of the slowest stored traces.

    ``store_dump`` is a :meth:`~repro.obs.trace.TraceStore.to_dict`
    snapshot (single-shard or merged).  Records rank by duration
    descending with trace-id ascending as the tiebreak, so the digest is
    a pure function of the record *set* — byte-identical however many
    jobs produced it.  Every value is an int or str; JSON with sorted
    keys is the canonical byte form.
    """
    ranked = sorted(
        store_dump.get("records", ()),
        key=lambda r: (-int(r["duration_ns"]), r["trace_id"]),
    )
    entries: List[Dict[str, Any]] = []
    for record in ranked[: max(0, int(top))]:
        entry: Dict[str, Any] = {
            "trace_id": record["trace_id"],
            "supi": record["supi"],
            "attempt": int(record["attempt"]),
            "success": bool(record["success"]),
            "reason": record["reason"],
            "sojourn_ns": int(record["sojourn_ns"]),
            "duration_ns": int(record["duration_ns"]),
            "critical_path": critical_path(record["root"]),
        }
        if "shard" in record:
            entry["shard"] = str(record["shard"])
        if module_servers is not None:
            entry["modules_ns"] = registration_breakdown_ns(
                record["root"], module_servers, module_runtimes
            )
        entries.append(entry)
    return {
        "schema": DIGEST_SCHEMA,
        "top": int(top),
        "seen": int(store_dump.get("seen", 0)),
        "kept": len(store_dump.get("records", ())),
        "kept_tail": int(store_dump.get("kept_tail", 0)),
        "kept_head": int(store_dump.get("kept_head", 0)),
        "evicted": int(store_dump.get("evicted", 0)),
        "slowest": entries,
    }
