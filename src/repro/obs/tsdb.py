"""A tiny time-series database over the simulated clock.

The scraper (:mod:`repro.obs.scrape`) periodically snapshots a
:class:`~repro.obs.metrics.MetricsRegistry` into this store; each metric
becomes a :class:`TsdbSeries` of ``(sim_ts_ns, value)`` points keyed by
``(name, labels)``, exactly how the registry keys metrics.  Retention
follows the :class:`~repro.sim.metrics.BoundedSeries` contract: an
optional cap ≥ 2, with appends beyond it dropping the oldest half of the
retained window, so a long campaign's Tsdb stays bounded while recent
history stays dense.

Derived values are **recording rules computed at query time**, never
materialised at ingest:

* :meth:`Tsdb.increase` — Prometheus-style counter increase over a
  window, treating a decrease as a counter reset (the pre-reset value is
  banked and the post-reset value counts from zero),
* :meth:`Tsdb.rate` — increase per second of window,
* :meth:`Tsdb.quantile` — windowed quantile over a gauge's samples.

Everything here only *reads* simulated time: ingesting or querying a
Tsdb never advances the clock and never draws from an RNG, which is what
lets an armed scraper leave golden clocks byte-identical.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import LabelItems, MetricKey, MetricsRegistry, _label_key

NS_PER_S = 1_000_000_000

SamplePoint = Tuple[int, float]  # (sim_ts_ns, value)


class TsdbSeries:
    """One ``(name, labels)`` series of timestamped samples.

    ``kind`` is ``"counter"`` (cumulative; query with increase/rate) or
    ``"gauge"`` (point-in-time; query with latest/quantile).  Samples are
    append-only with monotonically non-decreasing timestamps.
    """

    __slots__ = ("name", "labels", "kind", "cap", "samples")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        kind: str = "gauge",
        cap: Optional[int] = None,
    ) -> None:
        if kind not in ("counter", "gauge"):
            raise ValueError(f"unknown series kind {kind!r}")
        if cap is not None and cap < 2:
            raise ValueError(f"cap must be >= 2, got {cap}")
        self.name = name
        self.labels = labels
        self.kind = kind
        self.cap = cap
        self.samples: List[SamplePoint] = []

    def append(self, ts_ns: int, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"series {self.name} cannot ingest non-finite sample {value!r}"
            )
        if self.samples and ts_ns < self.samples[-1][0]:
            raise ValueError(
                f"series {self.name}: timestamps must not go backwards "
                f"({self.samples[-1][0]} -> {ts_ns})"
            )
        self.samples.append((int(ts_ns), value))
        # BoundedSeries retention contract: beyond the cap, drop the
        # oldest half of the retained window.
        if self.cap is not None and len(self.samples) > self.cap:
            del self.samples[: len(self.samples) // 2]

    def latest(self) -> Optional[SamplePoint]:
        return self.samples[-1] if self.samples else None

    def window(self, start_ns: int, end_ns: int) -> List[SamplePoint]:
        """Samples with ``start_ns <= ts <= end_ns`` (inclusive bounds)."""
        return [s for s in self.samples if start_ns <= s[0] <= end_ns]

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TsdbSeries({self.name!r}, kind={self.kind!r}, "
            f"n={len(self.samples)})"
        )


class Tsdb:
    """Ring-buffer store of scraped metric samples on the simulated clock."""

    # Per-series exemplar retention: enough to cover any SLO window at
    # scrape cadence (entries are deduplicated per bucket, so the list
    # grows only when a *new* trace lands in a bucket).
    _EXEMPLAR_CAP = 256

    def __init__(self, cap: Optional[int] = None) -> None:
        self.cap = cap
        self._series: Dict[MetricKey, TsdbSeries] = {}
        # Exemplar timelines keyed like histogram series: (basename,
        # labels) -> [(observed_at_ns, le, value, trace_id), ...] in
        # ingest order.  Populated from histograms that carry an adopted
        # exemplar map; queried by the SLO engine and the detector to
        # cite trace ids in alert/verdict payloads.
        self._exemplars: Dict[MetricKey, List[Tuple[int, str, float, str]]] = {}
        # Every ingest timestamp, in order — the SLO engine replays these.
        self.scrape_times: List[int] = []

    # ------------------------------------------------------------- series

    def series(self, name: str, kind: str = "gauge", **labels: str) -> TsdbSeries:
        """Get-or-create the series for ``(name, labels)``."""
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TsdbSeries(
                name, key[1], kind=kind, cap=self.cap
            )
        elif series.kind != kind:
            raise ValueError(
                f"series {name} already exists with kind {series.kind!r}, "
                f"not {kind!r}"
            )
        return series

    def get(self, name: str, **labels: str) -> Optional[TsdbSeries]:
        return self._series.get((name, _label_key(labels)))

    def all_series(self) -> List[TsdbSeries]:
        return [self._series[key] for key in sorted(self._series)]

    def series_named(self, name: str) -> List[TsdbSeries]:
        """Every series with ``name``, in sorted label order.

        The detection analytics fan over per-label series (per-gNB
        arrival counters, shed-by-reason counters) without knowing the
        label values up front; sorted iteration keeps every consumer
        deterministic.
        """
        return [
            self._series[key] for key in sorted(self._series) if key[0] == name
        ]

    def __len__(self) -> int:
        return len(self._series)

    # ------------------------------------------------------------- ingest

    def ingest(self, registry: MetricsRegistry, ts_ns: int) -> None:
        """Pull one registry snapshot into the store at simulated ``ts_ns``.

        Counters and gauges land verbatim; histograms land as cumulative
        ``_count`` / ``_sum`` counter series (quantiles are windowed
        recording rules at query time, never materialised here).
        """
        ts_ns = int(ts_ns)
        # Insertion-order iteration: series are keyed by (name, labels),
        # so ingest order never changes a sample, and the exported views
        # (`all_series`, `to_dict`) sort for themselves.
        for counter in registry.iter_counters():
            self._ingest_one(counter.name, counter.labels, "counter",
                             ts_ns, float(counter.value))
        for gauge in registry.iter_gauges():
            self._ingest_one(gauge.name, gauge.labels, "gauge",
                             ts_ns, gauge.value)
        for histogram in registry.iter_histograms():
            self._ingest_one(histogram.name + "_count", histogram.labels,
                             "counter", ts_ns, float(histogram.count))
            self._ingest_one(histogram.name + "_sum", histogram.labels,
                             "counter", ts_ns, float(histogram.total))
            if histogram.exemplars:
                self._ingest_exemplars(
                    histogram.name, histogram.labels, histogram.exemplars
                )
        self.scrape_times.append(ts_ns)

    def _ingest_exemplars(
        self,
        basename: str,
        labels: LabelItems,
        exemplars: Dict[str, Tuple[float, str, int]],
    ) -> None:
        """Fold a histogram's per-bucket exemplars into the timeline.

        An entry is appended only when the bucket's exemplar changed
        since the previous scrape (new trace id), so a quiet histogram
        adds nothing per scrape.  Buckets are visited in sorted ``le``
        order — ingest stays deterministic no matter how the producer
        populated its dict.
        """
        key = (basename, labels)
        timeline = self._exemplars.get(key)
        if timeline is None:
            timeline = self._exemplars[key] = []
        latest_by_le: Dict[str, str] = {}
        for observed_at_ns, le, _value, trace_id in timeline:
            latest_by_le[le] = trace_id
        for le in sorted(exemplars):
            value, trace_id, observed_at_ns = exemplars[le]
            if latest_by_le.get(le) == trace_id:
                continue
            timeline.append((int(observed_at_ns), le, float(value), trace_id))
        if len(timeline) > self._EXEMPLAR_CAP:
            del timeline[: len(timeline) // 2]

    def _ingest_one(
        self, name: str, labels: LabelItems, kind: str, ts_ns: int, value: float
    ) -> None:
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TsdbSeries(
                name, labels, kind=kind, cap=self.cap
            )
        # Inlined :meth:`TsdbSeries.append` (same checks, one call fewer
        # per sample — a scrape ingests a few hundred of these).
        if not math.isfinite(value):
            raise ValueError(
                f"series {name} cannot ingest non-finite sample {value!r}"
            )
        samples = series.samples
        if samples and ts_ns < samples[-1][0]:
            raise ValueError(
                f"series {name}: timestamps must not go backwards "
                f"({samples[-1][0]} -> {ts_ns})"
            )
        samples.append((ts_ns, value))
        cap = series.cap
        if cap is not None and len(samples) > cap:
            del samples[: len(samples) // 2]

    # ---------------------------------------------------- recording rules

    def increase(
        self, name: str, window_ns: int, at_ns: int, **labels: str
    ) -> float:
        """Counter increase over ``[at_ns - window_ns, at_ns]``.

        Prometheus-style reset handling: a sample lower than its
        predecessor means the producer restarted — the positive deltas on
        either side of the reset are summed, and the post-reset value
        counts from zero.  Returns 0.0 with fewer than two samples.
        """
        series = self.get(name, **labels)
        if series is None:
            return 0.0
        window = series.window(at_ns - window_ns, at_ns)
        if len(window) < 2:
            return 0.0
        total = 0.0
        previous = window[0][1]
        for _, value in window[1:]:
            total += value - previous if value >= previous else value
            previous = value
        return total

    def rate(self, name: str, window_ns: int, at_ns: int, **labels: str) -> float:
        """Per-second :meth:`increase` over the window."""
        if window_ns <= 0:
            raise ValueError(f"window must be positive: {window_ns}")
        return self.increase(name, window_ns, at_ns, **labels) / (
            window_ns / NS_PER_S
        )

    def quantile(
        self, name: str, q: float, window_ns: int, at_ns: int, **labels: str
    ) -> Optional[float]:
        """Windowed quantile (``q`` in percent) over a gauge's samples.

        ``None`` when the window holds no samples — the empty-window
        contract :func:`repro.experiments.stats.percentiles` defines.
        """
        from repro.experiments.stats import percentiles

        series = self.get(name, **labels)
        if series is None:
            return None
        values = [v for _, v in series.window(at_ns - window_ns, at_ns)]
        return percentiles(values, (q,))[0]

    def windowed_mean(
        self,
        basename: str,
        window_ns: int,
        at_ns: int,
        **labels: str,
    ) -> Optional[float]:
        """Mean of a histogram over the window: Δ``_sum`` / Δ``_count``.

        The textbook PromQL ``rate(x_sum[w]) / rate(x_count[w])``;
        ``None`` when the window saw no new observations.
        """
        count = self.increase(basename + "_count", window_ns, at_ns, **labels)
        if count <= 0:
            return None
        return self.increase(basename + "_sum", window_ns, at_ns, **labels) / count

    # ---------------------------------------------------------- exemplars

    def exemplars_in_window(
        self, basename: str, window_ns: int, at_ns: int, **labels: str
    ) -> List[str]:
        """Sorted unique trace ids observed in ``[at_ns - window_ns, at_ns]``.

        ``basename`` is the histogram name the exemplars were ingested
        under (e.g. ``gnb_registration_sojourn_ms``).
        """
        timeline = self._exemplars.get((basename, _label_key(labels)))
        if not timeline:
            return []
        start_ns = at_ns - window_ns
        return sorted({
            trace_id
            for observed_at_ns, _le, _value, trace_id in timeline
            if start_ns <= observed_at_ns <= at_ns
        })

    def exemplars_named(
        self, basename: str
    ) -> List[Tuple[LabelItems, List[Tuple[int, str, float, str]]]]:
        """Every exemplar timeline under ``basename``, sorted by labels."""
        return [
            (key[1], self._exemplars[key])
            for key in sorted(self._exemplars)
            if key[0] == basename
        ]

    # -------------------------------------------------------- merge / load

    def absorb(self, data: Dict[str, Any], **extra_labels: str) -> None:
        """Merge a :meth:`to_dict` dump into this store.

        ``extra_labels`` are added to every absorbed series — the
        partitioned campaign driver merges per-shard dumps with a
        ``shard`` label, so same-named series from different shards stay
        distinct (and per-shard timestamp monotonicity is preserved).
        Scrape times are pooled and kept sorted, which makes the merged
        store independent of absorb order.
        """
        for raw in data.get("series", []):
            labels = dict(raw["labels"])
            labels.update(extra_labels)
            series = self.series(raw["name"], kind=raw["kind"], **labels)
            for ts_ns, value in raw["samples"]:
                series.append(int(ts_ns), float(value))
        for raw in data.get("exemplars", []):
            labels = dict(raw["labels"])
            labels.update(extra_labels)
            key = (raw["name"], _label_key(labels))
            timeline = self._exemplars.setdefault(key, [])
            for observed_at_ns, le, value, trace_id in raw["entries"]:
                timeline.append(
                    (int(observed_at_ns), str(le), float(value), str(trace_id))
                )
        self.scrape_times = sorted(
            self.scrape_times + [int(t) for t in data.get("scrape_times", [])]
        )

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Tsdb":
        """Rebuild a store from a :meth:`to_dict` dump."""
        tsdb = cls(cap=data.get("cap"))
        tsdb.absorb(data)
        return tsdb

    # ------------------------------------------------------------- export

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic, JSON-ready dump (bit-identical per seeded run)."""
        payload: Dict[str, Any] = {
            "cap": self.cap,
            "scrape_times": list(self.scrape_times),
            "series": [
                {
                    "name": series.name,
                    "labels": {k: v for k, v in series.labels},
                    "kind": series.kind,
                    "samples": [[ts, value] for ts, value in series.samples],
                }
                for series in self.all_series()
            ],
        }
        if self._exemplars:
            payload["exemplars"] = [
                {
                    "name": key[0],
                    "labels": {k: v for k, v in key[1]},
                    "entries": [
                        [observed_at_ns, le, value, trace_id]
                        for observed_at_ns, le, value, trace_id
                        in self._exemplars[key]
                    ],
                }
                for key in sorted(self._exemplars)
            ]
        return payload
