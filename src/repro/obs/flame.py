"""Collapsed-stack emission for flamegraph.pl / speedscope.

The collapsed (folded) format is one line per unique stack::

    frame;frame;frame value

Frames must not contain semicolons or whitespace (both are structural),
so :func:`sanitize_frame` rewrites them.  Values here are *simulated
nanoseconds of self time* — the unit cancels out of the rendering, and
nanoseconds keep the folding exact-integer all the way down.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

StackKey = Tuple[str, ...]


def sanitize_frame(frame: str) -> str:
    """Make a frame label safe for the collapsed-stack grammar."""
    return (
        frame.replace(";", ":")
        .replace(" ", "_")
        .replace("\t", "_")
        .replace("\n", "_")
    ) or "_"


def collapsed_text(stacks: Mapping[StackKey, int]) -> str:
    """Render folded stacks, sorted for byte-stable output."""
    lines: List[str] = []
    for stack in sorted(stacks):
        value = stacks[stack]
        if value <= 0:
            continue
        lines.append(f"{';'.join(stack)} {value}")
    return "\n".join(lines) + "\n" if lines else ""


def parse_collapsed_text(text: str) -> Dict[StackKey, int]:
    """Parse folded stacks back (round-trip test surface)."""
    stacks: Dict[StackKey, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        body, _, value = line.rpartition(" ")
        if not body:
            raise ValueError(f"unparseable collapsed-stack line: {line!r}")
        key = tuple(body.split(";"))
        stacks[key] = stacks.get(key, 0) + int(value)
    return stacks


def totals_by_frame(stacks: Mapping[StackKey, int]) -> Dict[str, int]:
    """Inclusive self-time total per leaf frame (quick sanity views)."""
    totals: Dict[str, int] = {}
    for stack, value in stacks.items():
        leaf = stack[-1]
        totals[leaf] = totals.get(leaf, 0) + value
    return totals
