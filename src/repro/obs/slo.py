"""Declarative SLOs with multi-window burn-rate alerting over a Tsdb.

Objectives come from the paper's own envelope:

* **registration-success** — the control plane must register ≥ 99 % of
  attempting UEs (a :class:`RatioSlo` over the gNB attempt/success
  counters).
* **stable-latency-<module>** — each shielded module's stable total
  latency L_T must stay within the paper's Table II overhead budget,
  ≤ 2.9× its container baseline (a :class:`ThresholdSlo` over the
  windowed mean of the module server's ``http_lt_us`` histogram).

Alerting follows the multi-window multi-burn-rate recipe (Google SRE
workbook, ch. 5): an alert fires when the burn rate exceeds a factor
over **both** a long and a short window — the long window supplies
confidence, the short one makes the alert resolve quickly once the fault
clears.  Burn rate 1.0 means "consuming exactly the error budget".

Everything is evaluated over the :class:`~repro.obs.tsdb.Tsdb` scrape
timeline, replaying the recorded simulated timestamps — the engine is a
pure function of the Tsdb contents, so a fixed ``(seed, plan, cadence)``
yields bit-identical alerts, including firing/resolve timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.tsdb import NS_PER_S, Tsdb


@dataclass(frozen=True)
class BurnRateWindow:
    """One (long, short) window pair with its firing factor."""

    name: str        # "fast" / "slow"
    long_s: float
    short_s: float
    factor: float    # fire when burn >= factor on BOTH windows

    @property
    def long_ns(self) -> int:
        return int(self.long_s * NS_PER_S)

    @property
    def short_ns(self) -> int:
        return int(self.short_s * NS_PER_S)


#: Window pairs scaled to the availability experiment's 180 s horizon the
#: way the SRE workbook's 1 h/5 m + 6 h/30 m pairs scale to a 30 d budget.
RATIO_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow("fast", long_s=60.0, short_s=15.0, factor=4.0),
    BurnRateWindow("slow", long_s=120.0, short_s=30.0, factor=1.5),
)
LATENCY_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow("fast", long_s=30.0, short_s=10.0, factor=1.5),
    BurnRateWindow("slow", long_s=90.0, short_s=30.0, factor=1.0),
)

#: Container-mode stable L_T per module (µs), the Fig 9 / Table II
#: baseline the 2.9× stable-overhead objective multiplies.
CONTAINER_BASELINE_LT_US: Dict[str, float] = {
    "eudm": 61.0,
    "eausf": 55.0,
    "eamf": 48.1,
}

#: Table II: the worst consolidated *stable* L_T overhead factor the
#: paper accepts for SGX-shielded modules.
TABLE2_STABLE_FACTOR = 2.9


class RatioSlo:
    """Good/total ratio objective (e.g. registration success ≥ 99 %).

    Burn rate = observed bad fraction over the window divided by the
    error budget ``1 - objective``; 0.0 when the window saw no traffic.
    """

    def __init__(
        self,
        name: str,
        good: Tuple[str, Mapping[str, str]],
        total: Tuple[str, Mapping[str, str]],
        objective: float = 0.99,
        windows: Sequence[BurnRateWindow] = RATIO_WINDOWS,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        self.name = name
        self.good = (good[0], dict(good[1]))
        self.total = (total[0], dict(total[1]))
        self.objective = objective
        self.windows = tuple(windows)

    def burn_rate(self, tsdb: Tsdb, window_ns: int, at_ns: int) -> float:
        total_name, total_labels = self.total
        total_inc = tsdb.increase(total_name, window_ns, at_ns, **total_labels)
        if total_inc <= 0:
            return 0.0
        good_name, good_labels = self.good
        good_inc = tsdb.increase(good_name, window_ns, at_ns, **good_labels)
        bad_fraction = max(0.0, 1.0 - good_inc / total_inc)
        return bad_fraction / (1.0 - self.objective)

    def describe(self) -> str:
        return f"{self.name}: good/total >= {self.objective:g}"


class ThresholdSlo:
    """Windowed-mean ceiling objective (e.g. L_T ≤ 2.9× baseline).

    Burn rate = windowed mean (Δ``_sum``/Δ``_count`` of the histogram)
    divided by the limit; 0.0 when the window saw no new observations —
    an idle (or dead) producer is a *traffic* problem, which the ratio
    SLO owns, not a latency one.
    """

    def __init__(
        self,
        name: str,
        basename: str,
        labels: Mapping[str, str],
        limit_us: float,
        windows: Sequence[BurnRateWindow] = LATENCY_WINDOWS,
    ) -> None:
        if limit_us <= 0:
            raise ValueError(f"limit must be positive, got {limit_us}")
        self.name = name
        self.basename = basename
        self.labels = dict(labels)
        self.limit_us = limit_us
        self.windows = tuple(windows)

    def burn_rate(self, tsdb: Tsdb, window_ns: int, at_ns: int) -> float:
        mean = tsdb.windowed_mean(self.basename, window_ns, at_ns, **self.labels)
        if mean is None:
            return 0.0
        return mean / self.limit_us

    def describe(self) -> str:
        return f"{self.name}: mean {self.basename} <= {self.limit_us:g} us"


@dataclass
class Alert:
    """One firing of an SLO's burn-rate rule, on simulated time."""

    slo: str
    window: str
    fired_at_ns: int
    resolved_at_ns: Optional[int] = None
    peak_burn: float = 0.0

    @property
    def resolved(self) -> bool:
        return self.resolved_at_ns is not None

    def to_dict(self, base_ns: int = 0) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "window": self.window,
            "fired_at_ns": self.fired_at_ns,
            "fired_at_s": round((self.fired_at_ns - base_ns) / NS_PER_S, 6),
            "resolved_at_ns": self.resolved_at_ns,
            "resolved_at_s": (
                None if self.resolved_at_ns is None
                else round((self.resolved_at_ns - base_ns) / NS_PER_S, 6)
            ),
            "peak_burn": round(self.peak_burn, 6),
        }


class SloEngine:
    """Replays a Tsdb's scrape timeline against a set of SLOs."""

    def __init__(self, slos: Sequence[Any]) -> None:
        self.slos = list(slos)

    def evaluate(self, tsdb: Tsdb) -> List[Alert]:
        """All alerts over the scrape timeline, in firing order.

        An alert opens at the first scrape where the burn rate meets the
        window factor on both the long and the short window, and resolves
        at the first later scrape where either drops below.  Alerts still
        active at the last scrape are returned unresolved.
        """
        alerts: List[Alert] = []
        open_alerts: Dict[Tuple[str, str], Alert] = {}
        for at_ns in tsdb.scrape_times:
            for slo in self.slos:
                for window in slo.windows:
                    key = (slo.name, window.name)
                    long_burn = slo.burn_rate(tsdb, window.long_ns, at_ns)
                    firing = long_burn >= window.factor and (
                        slo.burn_rate(tsdb, window.short_ns, at_ns)
                        >= window.factor
                    )
                    alert = open_alerts.get(key)
                    if firing:
                        if alert is None:
                            alert = Alert(
                                slo=slo.name, window=window.name,
                                fired_at_ns=at_ns, peak_burn=long_burn,
                            )
                            open_alerts[key] = alert
                            alerts.append(alert)
                        elif long_burn > alert.peak_burn:
                            alert.peak_burn = long_burn
                    elif alert is not None:
                        alert.resolved_at_ns = at_ns
                        del open_alerts[key]
        return alerts


def default_slos(testbed: Any) -> List[Any]:
    """The paper-derived objectives for one testbed."""
    gnb = testbed.gnb
    slos: List[Any] = [
        RatioSlo(
            "registration-success",
            good=("gnb_registrations_succeeded_total", {"gnb": gnb.name}),
            total=("gnb_registrations_attempted_total", {"gnb": gnb.name}),
            objective=0.99,
        )
    ]
    for module, server in sorted(testbed.module_servers().items()):
        baseline = CONTAINER_BASELINE_LT_US.get(module)
        if baseline is None:
            continue
        slos.append(
            ThresholdSlo(
                f"stable-latency-{module}",
                basename="http_lt_us",
                labels={"server": server.name, "component": module},
                limit_us=TABLE2_STABLE_FACTOR * baseline,
            )
        )
    return slos
