"""Declarative SLOs with multi-window burn-rate alerting over a Tsdb.

Objectives come from the paper's own envelope:

* **registration-success** — the control plane must register ≥ 99 % of
  attempting UEs (a :class:`RatioSlo` over the gNB attempt/success
  counters).
* **stable-latency-<module>** — each shielded module's stable total
  latency L_T must stay within the paper's Table II overhead budget,
  ≤ 2.9× its container baseline (a :class:`ThresholdSlo` over the
  windowed mean of the module server's ``http_lt_us`` histogram).

Alerting follows the multi-window multi-burn-rate recipe (Google SRE
workbook, ch. 5): an alert fires when the burn rate exceeds a factor
over **both** a long and a short window — the long window supplies
confidence, the short one makes the alert resolve quickly once the fault
clears.  Burn rate 1.0 means "consuming exactly the error budget".

Everything is evaluated over the :class:`~repro.obs.tsdb.Tsdb` scrape
timeline, replaying the recorded simulated timestamps — the engine is a
pure function of the Tsdb contents, so a fixed ``(seed, plan, cadence)``
yields bit-identical alerts, including firing/resolve timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.tsdb import NS_PER_S, Tsdb


@dataclass(frozen=True)
class BurnRateWindow:
    """One (long, short) window pair with its firing factor."""

    name: str        # "fast" / "slow"
    long_s: float
    short_s: float
    factor: float    # fire when burn >= factor on BOTH windows

    @property
    def long_ns(self) -> int:
        return int(self.long_s * NS_PER_S)

    @property
    def short_ns(self) -> int:
        return int(self.short_s * NS_PER_S)


#: Window pairs scaled to the availability experiment's 180 s horizon the
#: way the SRE workbook's 1 h/5 m + 6 h/30 m pairs scale to a 30 d budget.
RATIO_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow("fast", long_s=60.0, short_s=15.0, factor=4.0),
    BurnRateWindow("slow", long_s=120.0, short_s=30.0, factor=1.5),
)
LATENCY_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow("fast", long_s=30.0, short_s=10.0, factor=1.5),
    BurnRateWindow("slow", long_s=90.0, short_s=30.0, factor=1.0),
)
#: Sojourn windows are tight because storms are short: the survivability
#: campaign's attack window is ~12 s, so a 60 s long window would never
#: confirm inside it.  Burn 1.0 = mean sojourn at the deadline; the slow
#: pair fires at 0.6 (150 ms of a 250 ms deadline) for early warning.
SOJOURN_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow("fast", long_s=6.0, short_s=2.0, factor=1.0),
    BurnRateWindow("slow", long_s=30.0, short_s=10.0, factor=0.6),
)
#: Liveness windows: burn is the shortfall of the observed attempt rate
#: against the expected floor, so factor 0.95 means "95 % of expected
#: traffic has vanished" — a starved gNB, not a noisy one.
LIVENESS_WINDOWS: Tuple[BurnRateWindow, ...] = (
    BurnRateWindow("fast", long_s=20.0, short_s=5.0, factor=0.95),
)

#: The survivability campaign's registration deadline (ms of simulated
#: gNB-side sojourn, attempt arrival → outcome) — the number a user
#: would call "the attach worked".
REGISTRATION_SOJOURN_DEADLINE_MS = 250.0

#: Container-mode stable L_T per module (µs), the Fig 9 / Table II
#: baseline the 2.9× stable-overhead objective multiplies.
CONTAINER_BASELINE_LT_US: Dict[str, float] = {
    "eudm": 61.0,
    "eausf": 55.0,
    "eamf": 48.1,
}

#: Table II: the worst consolidated *stable* L_T overhead factor the
#: paper accepts for SGX-shielded modules.
TABLE2_STABLE_FACTOR = 2.9


class RatioSlo:
    """Good/total ratio objective (e.g. registration success ≥ 99 %).

    Burn rate = observed bad fraction over the window divided by the
    error budget ``1 - objective``; 0.0 when the window saw no traffic.
    """

    def __init__(
        self,
        name: str,
        good: Tuple[str, Mapping[str, str]],
        total: Tuple[str, Mapping[str, str]],
        objective: float = 0.99,
        windows: Sequence[BurnRateWindow] = RATIO_WINDOWS,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        self.name = name
        self.good = (good[0], dict(good[1]))
        self.total = (total[0], dict(total[1]))
        self.objective = objective
        self.windows = tuple(windows)

    def burn_rate(self, tsdb: Tsdb, window_ns: int, at_ns: int) -> float:
        total_name, total_labels = self.total
        total_inc = tsdb.increase(total_name, window_ns, at_ns, **total_labels)
        if total_inc <= 0:
            return 0.0
        good_name, good_labels = self.good
        good_inc = tsdb.increase(good_name, window_ns, at_ns, **good_labels)
        bad_fraction = max(0.0, 1.0 - good_inc / total_inc)
        return bad_fraction / (1.0 - self.objective)

    def describe(self) -> str:
        return f"{self.name}: good/total >= {self.objective:g}"


class ThresholdSlo:
    """Windowed-mean ceiling objective (e.g. L_T ≤ 2.9× baseline).

    Burn rate = windowed mean (Δ``_sum``/Δ``_count`` of the histogram)
    divided by the limit; 0.0 when the window saw no new observations —
    an idle (or dead) producer is a *traffic* problem, which the ratio
    SLO owns, not a latency one.
    """

    def __init__(
        self,
        name: str,
        basename: str,
        labels: Mapping[str, str],
        limit_us: float,
        windows: Sequence[BurnRateWindow] = LATENCY_WINDOWS,
    ) -> None:
        if limit_us <= 0:
            raise ValueError(f"limit must be positive, got {limit_us}")
        self.name = name
        self.basename = basename
        self.labels = dict(labels)
        self.limit_us = limit_us
        self.windows = tuple(windows)

    def burn_rate(self, tsdb: Tsdb, window_ns: int, at_ns: int) -> float:
        mean = tsdb.windowed_mean(self.basename, window_ns, at_ns, **self.labels)
        if mean is None:
            return 0.0
        return mean / self.limit_us

    def describe(self) -> str:
        return f"{self.name}: mean {self.basename} <= {self.limit_us:g} us"


class SojournSlo:
    """gNB-side registration-sojourn ceiling (attempt → outcome).

    The blind spot this closes: a pure-queueing collapse leaves every
    registration *eventually* succeeding, so the success-ratio SLO reads
    healthy while the sojourn deadline dies.  Burn rate = windowed mean
    of the ``gnb_registration_sojourn_ms`` histogram divided by the
    deadline; 0.0 when the window saw no attempts (starvation is the
    liveness SLO's problem, same split as :class:`ThresholdSlo`).
    """

    basename = "gnb_registration_sojourn_ms"

    def __init__(
        self,
        name: str,
        labels: Mapping[str, str],
        deadline_ms: float = REGISTRATION_SOJOURN_DEADLINE_MS,
        windows: Sequence[BurnRateWindow] = SOJOURN_WINDOWS,
    ) -> None:
        if deadline_ms <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_ms}")
        self.name = name
        self.labels = dict(labels)
        self.deadline_ms = deadline_ms
        self.windows = tuple(windows)

    def burn_rate(self, tsdb: Tsdb, window_ns: int, at_ns: int) -> float:
        mean = tsdb.windowed_mean(self.basename, window_ns, at_ns, **self.labels)
        if mean is None:
            return 0.0
        return mean / self.deadline_ms

    def describe(self) -> str:
        return (
            f"{self.name}: mean {self.basename} <= {self.deadline_ms:g} ms"
        )


class LivenessSlo:
    """Traffic-liveness floor: the expected attempt rate must keep flowing.

    :class:`RatioSlo` reads a zero-attempt window as burn 0.0, so a
    fully starved gNB — the worst failure mode — looks healthy.  This
    companion objective burns on the *shortfall*: burn = 1 − rate/floor,
    clamped at 0.  It stays silent until the counter has at least two
    samples inside the window, so a freshly armed scraper cannot fire
    before traffic had any chance to appear.
    """

    def __init__(
        self,
        name: str,
        total: Tuple[str, Mapping[str, str]],
        min_rate_per_s: float,
        windows: Sequence[BurnRateWindow] = LIVENESS_WINDOWS,
    ) -> None:
        if min_rate_per_s <= 0:
            raise ValueError(
                f"min rate must be positive, got {min_rate_per_s}"
            )
        self.name = name
        self.total = (total[0], dict(total[1]))
        self.min_rate_per_s = min_rate_per_s
        self.windows = tuple(windows)

    def burn_rate(self, tsdb: Tsdb, window_ns: int, at_ns: int) -> float:
        total_name, total_labels = self.total
        series = tsdb.get(total_name, **total_labels)
        if series is None or len(series.window(at_ns - window_ns, at_ns)) < 2:
            return 0.0
        rate = tsdb.rate(total_name, window_ns, at_ns, **total_labels)
        return max(0.0, 1.0 - rate / self.min_rate_per_s)

    def describe(self) -> str:
        return (
            f"{self.name}: rate {self.total[0]} >= {self.min_rate_per_s:g}/s"
        )


@dataclass
class Alert:
    """One firing of an SLO's burn-rate rule, on simulated time.

    ``exemplar_trace_ids`` cites the traces behind the page: every trace
    id whose exemplar landed in the SLO's histogram (same basename +
    labels) inside the long window while the alert was firing.  Empty
    unless the run carried a trace-context-armed tracer.
    """

    slo: str
    window: str
    fired_at_ns: int
    resolved_at_ns: Optional[int] = None
    peak_burn: float = 0.0
    exemplar_trace_ids: List[str] = field(default_factory=list)

    @property
    def resolved(self) -> bool:
        return self.resolved_at_ns is not None

    def cite_exemplars(self, trace_ids: Sequence[str]) -> None:
        """Union-merge cited trace ids, kept sorted and unique."""
        if trace_ids:
            self.exemplar_trace_ids = sorted(
                set(self.exemplar_trace_ids).union(trace_ids)
            )

    def to_dict(self, base_ns: int = 0) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "window": self.window,
            "fired_at_ns": self.fired_at_ns,
            "fired_at_s": round((self.fired_at_ns - base_ns) / NS_PER_S, 6),
            "resolved_at_ns": self.resolved_at_ns,
            "resolved_at_s": (
                None if self.resolved_at_ns is None
                else round((self.resolved_at_ns - base_ns) / NS_PER_S, 6)
            ),
            "peak_burn": round(self.peak_burn, 6),
            "exemplar_trace_ids": list(self.exemplar_trace_ids),
        }


class SloEngine:
    """Replays a Tsdb's scrape timeline against a set of SLOs."""

    def __init__(self, slos: Sequence[Any]) -> None:
        self.slos = list(slos)

    def evaluate(self, tsdb: Tsdb) -> List[Alert]:
        """All alerts over the scrape timeline, in firing order.

        An alert opens at the first scrape where the burn rate meets the
        window factor on both the long and the short window, and resolves
        at the first later scrape where either drops below.  Alerts still
        active at the last scrape are returned unresolved.
        """
        alerts: List[Alert] = []
        open_alerts: Dict[Tuple[str, str], Alert] = {}
        for at_ns in tsdb.scrape_times:
            for slo in self.slos:
                for window in slo.windows:
                    key = (slo.name, window.name)
                    long_burn = slo.burn_rate(tsdb, window.long_ns, at_ns)
                    firing = long_burn >= window.factor and (
                        slo.burn_rate(tsdb, window.short_ns, at_ns)
                        >= window.factor
                    )
                    alert = open_alerts.get(key)
                    if firing:
                        if alert is None:
                            alert = Alert(
                                slo=slo.name, window=window.name,
                                fired_at_ns=at_ns, peak_burn=long_burn,
                            )
                            open_alerts[key] = alert
                            alerts.append(alert)
                        elif long_burn > alert.peak_burn:
                            alert.peak_burn = long_burn
                        # Cite the traces behind the burn: exemplars the
                        # SLO's own histogram recorded inside the long
                        # window.  SLOs without a histogram basename
                        # (ratio/liveness) have nothing to cite.
                        basename = getattr(slo, "basename", None)
                        if basename is not None:
                            alert.cite_exemplars(
                                tsdb.exemplars_in_window(
                                    basename, window.long_ns, at_ns,
                                    **getattr(slo, "labels", {}),
                                )
                            )
                    elif alert is not None:
                        alert.resolved_at_ns = at_ns
                        del open_alerts[key]
        return alerts


def _legit_gnbs(testbed: Any) -> List[Any]:
    """Every legitimate gNB on the testbed, attack cells excluded.

    A sharded testbed may expose ``testbed.gnbs``; the single-cell
    testbed only ``testbed.gnb``.  Hostile cells (``gnb-atk-*``, the
    :mod:`repro.security.attacks` ingress names) carry adversarial
    streams whose failure is *desired* — binding SLOs to them would turn
    every successful defense into a page.
    """
    gnbs = list(getattr(testbed, "gnbs", None) or [testbed.gnb])
    return [gnb for gnb in gnbs if not gnb.name.startswith("gnb-atk-")]


def default_slos(
    testbed: Any,
    expected_registration_rate_per_s: Optional[float] = None,
) -> List[Any]:
    """The paper-derived objectives for one testbed.

    Per legitimate gNB: the ≥99 % success ratio, the 250 ms sojourn
    deadline, and — when the caller declares the workload's expected
    attempt rate — a traffic-liveness floor that catches full starvation
    (the case the ratio SLO reads as burn 0).  SLO names carry a
    ``-<gnb>`` suffix only on multi-cell testbeds, so single-cell alert
    streams keep their historical names.
    """
    slos: List[Any] = []
    gnbs = _legit_gnbs(testbed)
    multi_cell = len(gnbs) > 1
    for gnb in gnbs:
        suffix = f"-{gnb.name}" if multi_cell else ""
        slos.append(
            RatioSlo(
                f"registration-success{suffix}",
                good=("gnb_registrations_succeeded_total", {"gnb": gnb.name}),
                total=("gnb_registrations_attempted_total", {"gnb": gnb.name}),
                objective=0.99,
            )
        )
        slos.append(
            SojournSlo(
                f"registration-sojourn{suffix}",
                labels={"gnb": gnb.name},
            )
        )
        if expected_registration_rate_per_s is not None:
            slos.append(
                LivenessSlo(
                    f"registration-liveness{suffix}",
                    total=(
                        "gnb_registrations_attempted_total",
                        {"gnb": gnb.name},
                    ),
                    min_rate_per_s=expected_registration_rate_per_s,
                )
            )
    for module, server in sorted(testbed.module_servers().items()):
        baseline = CONTAINER_BASELINE_LT_US.get(module)
        if baseline is None:
            continue
        slos.append(
            ThresholdSlo(
                f"stable-latency-{module}",
                basename="http_lt_us",
                labels={"server": server.name, "component": module},
                limit_us=TABLE2_STABLE_FACTOR * baseline,
            )
        )
    return slos
