"""Periodic pull of metrics registries into a :class:`~repro.obs.tsdb.Tsdb`.

A :class:`Scraper` owns a *collect* callable that snapshots any
``MetricsRegistry`` producer — the usual one wraps
:func:`repro.obs.collect.collect_testbed_metrics`, which reaches the
HTTP servers/clients, NF circuit breakers, enclave ``SgxStats`` and the
fault injector in one pull.  The scraper is driven by ``tick()`` calls
from the simulation (end of each registration, each ``Testbed.idle``
slice); it samples whenever simulated time has crossed the next
cadence-grid deadline.

Scrapes are pull-only: they never advance the simulated clock and never
draw randomness, so an armed scraper leaves golden clocks byte-identical.
The testbed scraper reuses one persistent registry across scrapes
(metrics allocated once, re-``set`` per snapshot); counter reset banking
and histogram series re-adoption keep restarted producers monotone.
When no scraper is installed the hook cost is one attribute read
(``host.monitor is None``), mirroring the tracer contract.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tsdb import NS_PER_S, Tsdb


class Scraper:
    """Samples a registry producer on a simulated-time cadence."""

    __slots__ = ("clock", "collect", "tsdb", "cadence_ns", "enabled",
                 "scrapes", "observers", "_base_ns", "_next_ns")

    def __init__(
        self,
        clock: Any,
        collect: Callable[[], MetricsRegistry],
        cadence_s: float = 1.0,
        tsdb: Optional[Tsdb] = None,
        series_cap: Optional[int] = None,
    ) -> None:
        cadence_ns = int(round(cadence_s * NS_PER_S))
        if cadence_ns <= 0:
            raise ValueError(f"cadence must be positive, got {cadence_s}")
        self.clock = clock
        self.collect = collect
        self.tsdb = tsdb if tsdb is not None else Tsdb(cap=series_cap)
        self.cadence_ns = cadence_ns
        self.enabled = True
        self.scrapes = 0
        # On-line consumers of the freshly ingested Tsdb (e.g. the
        # :class:`repro.obs.detect.AdmissionGovernor`).  Observers run
        # after each ingest with the same timestamp; they must be pure
        # readers of simulated time — the golden-clock contract extends
        # to them.
        self.observers: list = []
        # Deadlines live on a grid anchored at install time, so the
        # sample *schedule* is a pure function of (anchor, cadence) even
        # though actual sample timestamps are the sim times of the
        # tick() calls that crossed each deadline.
        self._base_ns = 0
        self._next_ns = 0

    def install(self, host: Any) -> "Scraper":
        """Attach to ``host.monitor``, anchor the grid, take a baseline."""
        if getattr(host, "monitor", None) is not None:
            raise RuntimeError("a monitor is already installed on this host")
        host.monitor = self
        self._base_ns = self.clock.now_ns
        self._next_ns = self._base_ns + self.cadence_ns
        self.scrape()
        return self

    def uninstall(self, host: Any) -> None:
        if host.monitor is self:
            host.monitor = None

    def subscribe(self, observer: Any) -> "Scraper":
        """Register an ``on_scrape(tsdb, now_ns)`` observer."""
        self.observers.append(observer)
        return self

    def scrape(self) -> None:
        """Take one sample now, regardless of the cadence grid."""
        now_ns = self.clock.now_ns
        self.tsdb.ingest(self.collect(), now_ns)
        self.scrapes += 1
        for observer in self.observers:
            observer.on_scrape(self.tsdb, now_ns)

    def tick(self) -> None:
        """Sample iff simulated time crossed the next grid deadline.

        At most one scrape per tick: with coarse tick sites (a paced
        arrival loop) several deadlines may have elapsed, but replaying
        them would only duplicate the same cumulative snapshot at
        fabricated timestamps.  The deadline then re-aligns to the grid.
        """
        if not self.enabled:
            return
        now = self.clock.now_ns
        if now < self._next_ns:
            return
        self.scrape()
        elapsed = now - self._base_ns
        self._next_ns = (
            self._base_ns + (elapsed // self.cadence_ns + 1) * self.cadence_ns
        )

    @classmethod
    def for_testbed(
        cls,
        testbed: Any,
        cadence_s: float = 1.0,
        fault_injector: Optional[Any] = None,
        series_cap: Optional[int] = None,
        attack_plane: Optional[Any] = None,
    ) -> "Scraper":
        """Scraper over the whole testbed (plus optional fault injector
        and/or adversarial :class:`~repro.security.attacks.AttackPlane`,
        whose per-kind outcome counters fold into the same registry).

        The scraper owns one *persistent* registry reused across scrapes:
        metric objects and their label keys are allocated on the first
        pull and every later snapshot just re-``set``s them — the metric
        side of the zero-alloc observability work.  Persistence is what
        :meth:`~repro.obs.metrics.Counter.set`'s reset banking and
        :meth:`~repro.obs.metrics.MetricsRegistry.histogram_from_series`
        re-adoption were designed for, so restarted producers (an NF
        dying under fault injection) stay correctly monotone.
        """
        from repro.obs.collect import collect_testbed_metrics

        registry = MetricsRegistry()

        def collect() -> MetricsRegistry:
            collect_testbed_metrics(
                testbed, registry=registry, fault_injector=fault_injector
            )
            if attack_plane is not None:
                attack_plane.collect_metrics(registry)
            return registry

        return cls(
            testbed.host.clock,
            collect,
            cadence_s=cadence_s,
            series_cap=series_cap,
        )
