"""Observability: structured tracing and metrics for the reproduction.

The paper's whole evaluation is a latency decomposition — ``L_T = L_F +
L_N`` (Fig 9, Table II), client-observed response time (Fig 10) and
per-registration SGX transition counts (Table III).  This package makes
that decomposition a first-class artifact instead of experiment-script
arithmetic:

* :mod:`repro.obs.trace` — a :class:`Tracer` that attaches a span tree
  to each UE registration (NAS exchange → SBI hop → enclave OCALL),
  tagging spans with the paper's cost taxonomy so one trace reproduces
  the Table II ratios and Table III counts directly,
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and bounded histograms built on the exact
  :class:`~repro.sim.metrics.RunningStats` primitives,
* :mod:`repro.obs.export` — JSON and Prometheus-text exporters (with
  parsers, so round-trips are testable),
* :mod:`repro.obs.collect` — assembles a registry from a live testbed
  and records one-registration traces,
* :mod:`repro.obs.scrape` / :mod:`repro.obs.tsdb` — continuous
  monitoring: a :class:`Scraper` samples any registry producer on a
  simulated-time cadence into a ring-buffer :class:`Tsdb` with
  query-time recording rules (``rate``/``increase``/quantiles),
* :mod:`repro.obs.slo` — declarative objectives evaluated as
  multi-window burn-rate alerts over the Tsdb timeline,
* :mod:`repro.obs.profile` / :mod:`repro.obs.flame` — a
  cycle-attribution profiler folding span trees into collapsed-stack
  flame graphs split by the shield/copy/host/transition components,
* :mod:`repro.obs.analytics` — tail-based trace analytics over stored
  trees: exact integer-ns per-module breakdowns, critical paths and the
  deterministic slowest-traces digest.

Distributed tracing rides on the same span trees: a tracer armed with a
``trace_seed`` stamps deterministic ``trace_id``/``span_id`` identity on
every span, the HTTP client/server pair propagates the W3C
``traceparent`` across SBI hops, and finished trees land in a bounded
:class:`~repro.obs.trace.TraceStore` under tail-based sampling.

Tracing and monitoring are **zero-cost in simulated time** (spans and
scrapes only read the clock, never advance it) and near-zero in host
time when disabled: every hook is a single ``host.tracer is None`` /
``host.monitor is None`` check.
"""

from repro.obs.export import (
    parse_prometheus_text,
    registry_from_dict,
    registry_to_dict,
    registry_to_json,
    registry_to_prometheus_text,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.analytics import (
    critical_path,
    registration_breakdown_ns,
    slowest_traces_digest,
)
from repro.obs.trace import (
    Span,
    SpanNestingError,
    TraceStore,
    Tracer,
    parse_traceparent,
    registration_breakdown,
    span_from_dict,
    trace_context_id,
    traceparent_of,
)
from repro.obs.collect import (
    RegistrationTrace,
    collect_testbed_metrics,
    trace_registration,
)
from repro.obs.tsdb import Tsdb, TsdbSeries
from repro.obs.scrape import Scraper
from repro.obs.slo import (
    Alert,
    BurnRateWindow,
    RatioSlo,
    SloEngine,
    ThresholdSlo,
    default_slos,
)
from repro.obs.flame import collapsed_text, parse_collapsed_text
from repro.obs.profile import (
    RegistrationProfile,
    fold_registration,
    profile_registration,
)

__all__ = [
    "Alert",
    "BurnRateWindow",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RatioSlo",
    "RegistrationProfile",
    "RegistrationTrace",
    "Scraper",
    "SloEngine",
    "Span",
    "SpanNestingError",
    "ThresholdSlo",
    "TraceStore",
    "Tracer",
    "Tsdb",
    "TsdbSeries",
    "collapsed_text",
    "collect_testbed_metrics",
    "critical_path",
    "default_slos",
    "fold_registration",
    "parse_collapsed_text",
    "parse_prometheus_text",
    "parse_traceparent",
    "profile_registration",
    "registration_breakdown",
    "registration_breakdown_ns",
    "registry_from_dict",
    "registry_to_dict",
    "registry_to_json",
    "registry_to_prometheus_text",
    "slowest_traces_digest",
    "span_from_dict",
    "trace_context_id",
    "trace_registration",
    "traceparent_of",
]
