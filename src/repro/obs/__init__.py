"""Observability: structured tracing and metrics for the reproduction.

The paper's whole evaluation is a latency decomposition — ``L_T = L_F +
L_N`` (Fig 9, Table II), client-observed response time (Fig 10) and
per-registration SGX transition counts (Table III).  This package makes
that decomposition a first-class artifact instead of experiment-script
arithmetic:

* :mod:`repro.obs.trace` — a :class:`Tracer` that attaches a span tree
  to each UE registration (NAS exchange → SBI hop → enclave OCALL),
  tagging spans with the paper's cost taxonomy so one trace reproduces
  the Table II ratios and Table III counts directly,
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and bounded histograms built on the exact
  :class:`~repro.sim.metrics.RunningStats` primitives,
* :mod:`repro.obs.export` — JSON and Prometheus-text exporters (with
  parsers, so round-trips are testable),
* :mod:`repro.obs.collect` — assembles a registry from a live testbed
  and records one-registration traces.

Tracing is **zero-cost in simulated time** (spans only read the clock,
never advance it) and near-zero in host time when disabled: every hook
is a single ``host.tracer is None`` check.
"""

from repro.obs.export import (
    parse_prometheus_text,
    registry_from_dict,
    registry_to_dict,
    registry_to_json,
    registry_to_prometheus_text,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    Span,
    SpanNestingError,
    Tracer,
    registration_breakdown,
)
from repro.obs.collect import (
    RegistrationTrace,
    collect_testbed_metrics,
    trace_registration,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrationTrace",
    "Span",
    "SpanNestingError",
    "Tracer",
    "collect_testbed_metrics",
    "parse_prometheus_text",
    "registration_breakdown",
    "registry_from_dict",
    "registry_to_dict",
    "registry_to_json",
    "registry_to_prometheus_text",
    "trace_registration",
]
