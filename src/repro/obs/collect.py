"""Assemble observability artifacts from a live testbed.

Collection is a *pull*: live objects (HTTP servers/clients, NFs, SGX
stats, the fault injector) are snapshotted into a
:class:`MetricsRegistry` on demand, so a running simulation pays nothing
until someone asks.  Tracing one registration installs a
:class:`~repro.obs.trace.Tracer` on the host for exactly one
``register()`` call and removes it afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer, registration_breakdown
from repro.sgx.stats import SgxStats


def collect_sgx_stats(
    registry: MetricsRegistry, stats: SgxStats, **labels: str
) -> None:
    """Snapshot one enclave's Table III counters into the registry."""
    registry.counter("sgx_eenters_total", **labels).set(stats.eenters)
    registry.counter("sgx_eexits_total", **labels).set(stats.eexits)
    registry.counter("sgx_aexs_total", **labels).set(stats.aexs)
    registry.counter("sgx_ocalls_total", **labels).set(stats.ocalls)
    registry.counter("sgx_page_faults_total", **labels).set(stats.page_faults)
    registry.counter("sgx_page_evictions_total", **labels).set(stats.page_evictions)
    registry.counter("sgx_bytes_copied_in_total", **labels).set(stats.bytes_copied_in)
    registry.counter("sgx_bytes_copied_out_total", **labels).set(stats.bytes_copied_out)


def _paka_module_items(paka: Any):
    """``(component, module)`` pairs, one per deployed replica.

    ``PakaSlice.modules`` aliases the first replica under the plain short
    name when ``replicas > 1``; walking ``replica_groups`` instead keeps
    every module exactly once (``eudm``, then ``eudm#1`` …).
    """
    groups = getattr(paka, "replica_groups", None)
    if not groups:
        return list(paka.modules.items())
    items = []
    for short_name, group in groups.items():
        for k, module in enumerate(group):
            items.append((short_name if k == 0 else f"{short_name}#{k}", module))
    return items


def collect_testbed_metrics(
    testbed: Any,
    registry: Optional[MetricsRegistry] = None,
    fault_injector: Optional[Any] = None,
) -> MetricsRegistry:
    """Snapshot a whole testbed (Fig 4) into one registry."""
    registry = registry if registry is not None else MetricsRegistry()

    # Replica-aware: a sharded testbed exposes its serving path as lists
    # (first replica keeps the legacy attribute); iterate every slice so
    # nothing is invisible to the scraper.  Single-slice testbeds walk
    # the exact same objects in the exact same order as before.
    udms = getattr(testbed, "udms", None) or [testbed.udm]
    ausfs = getattr(testbed, "ausfs", None) or [testbed.ausf]
    amfs = getattr(testbed, "amfs", None) or [testbed.amf]
    for nf in (
        testbed.nrf, testbed.udr, *udms, *ausfs, *amfs,
        testbed.smf, testbed.upf,
    ):
        nf.collect_metrics(registry)

    if testbed.paka is not None:
        for name, module in _paka_module_items(testbed.paka):
            module.server.collect_metrics(registry, component=name)
            stats = module.runtime.sgx_stats
            if stats is not None:
                collect_sgx_stats(registry, stats, component=name)

    # Every gNB, not just the first: a sharded testbed fans registrations
    # over ``testbed.gnbs`` and an attack campaign adds hostile cells —
    # all of their streams must reach the Tsdb or the SLO engine is
    # blind to whole tracking areas (ROADMAP item 4).
    gnbs = getattr(testbed, "gnbs", None) or [testbed.gnb]
    for gnb in gnbs:
        registry.counter("gnb_registrations_attempted_total", gnb=gnb.name).set(
            gnb.registrations_attempted
        )
        registry.counter("gnb_registrations_succeeded_total", gnb=gnb.name).set(
            gnb.registrations_succeeded
        )
        # Adopt the live sojourn series: count/sum reach the Tsdb as
        # histogram component counters so windowed means are O(1).  The
        # gNB's per-bucket exemplar dict rides along (populated only
        # under a trace-context-armed tracer) so export can emit
        # OpenMetrics exemplars and alerts can cite trace ids.
        sojourn = registry.histogram_from_series(
            "gnb_registration_sojourn_ms", gnb.sojourn_ms, gnb=gnb.name
        )
        exemplars = getattr(gnb, "sojourn_exemplars", None)
        if exemplars:
            sojourn.exemplars = exemplars

    host = testbed.host
    registry.counter("sim_clock_ns_total", host=host.name).set(host.clock.now_ns)
    registry.gauge("sim_events_retained", host=host.name).set(len(host.events))
    registry.counter("sim_ocall_events_total", host=host.name).set(
        host.events.count("sgx.ocall")
    )

    if fault_injector is not None:
        fault_injector.collect_metrics(registry)
    return registry


@dataclass
class RegistrationTrace:
    """One traced UE registration: the span tree plus its decompositions."""

    root: Span
    outcome: Any
    # Per-module Fig 9 / Table II / Table III decomposition from spans.
    breakdown: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Per-module SgxStats deltas over the registration (the independent
    # counter-based view the span-derived numbers must agree with).
    stats_delta: Dict[str, SgxStats] = field(default_factory=dict)


def trace_registration(
    testbed: Any, establish_session: bool = False
) -> RegistrationTrace:
    """Trace exactly one registration on ``testbed``.

    The subscriber is provisioned *before* the tracer is installed (so
    provisioning SBI traffic does not pollute the tree), the tracer lives
    only for the ``register()`` call, and the simulated clock is advanced
    identically to an untraced registration.
    """
    host = testbed.host
    if host.tracer is not None:
        raise RuntimeError("a tracer is already installed on this host")

    ue = testbed.add_subscriber()
    modules = (
        dict(_paka_module_items(testbed.paka)) if testbed.paka is not None else {}
    )
    before = {
        name: module.runtime.sgx_stats.snapshot()
        for name, module in modules.items()
        if module.runtime.sgx_stats is not None
    }

    # Armed with the host seed so the one-shot trace carries the same
    # deterministic trace/span ids a campaign tracer would mint.
    tracer = Tracer(host.clock, trace_seed=host.rng.seed)
    host.tracer = tracer
    try:
        outcome = testbed.register(ue, establish_session=establish_session)
    finally:
        host.tracer = None
    if not tracer.roots:
        raise RuntimeError("registration produced no trace root")
    root = tracer.roots[-1]

    stats_delta = {
        name: modules[name].runtime.sgx_stats.delta(snapshot)
        for name, snapshot in before.items()
    }
    breakdown = registration_breakdown(
        root,
        module_servers={name: m.server.name for name, m in modules.items()},
        module_runtimes={name: m.runtime.name for name, m in modules.items()},
    )
    return RegistrationTrace(
        root=root, outcome=outcome, breakdown=breakdown, stats_delta=stats_delta
    )
