"""Attack classification and alert-armed admission (ROADMAP item 4).

PR 8's survivability campaign found the blind spot this module closes:
a pure-queueing collapse at 400 atk/s drove the legitimate success rate
to 0.07 while the SLO engine fired **zero** alerts — every registration
eventually succeeded, and nothing watched the gNB-side sojourn.  Three
pieces close the loop from *seeing* an attack to *surviving* it:

* :class:`AttackClassifier` — folds the defender-side series the scraper
  already collects (per-gNB arrival skew, AUTS-resync and NAS-fuzz
  signature rates, accept fractions, sojourn-vs-success divergence) into
  a deterministic per-window verdict: one of :data:`VERDICTS`.
* :class:`AdmissionGovernor` — a scraper observer that arms or tunes the
  AMF's :class:`~repro.fivegc.admission.AdmissionController` at runtime:
  ingress defenses (per-source buckets, per-gNB guards) on attack
  verdicts, the overload breaker on sojourn burn, with hysteresis so a
  transient blip neither arms nor disarms anything.  The runtime-tunable
  per-source policy shape is the one 5G-WAVE's decentralized
  authorization argues for (PAPERS.md).
* :func:`evaluate_detector` — confusion-matrix evaluation over seeded
  pure-kind storm schedules as ground truth, plus a legit flash crowd
  for the ``queueing_collapse`` class.

Everything is clockless bookkeeping over the Tsdb: classification and
governance read simulated time, never advance it and never draw from an
RNG, so a quiescent governor leaves golden clocks byte-identical and a
fixed ``(seed, storm, cadence)`` yields bit-identical verdicts and
actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.fivegc.admission import AdmissionConfig, AdmissionController
from repro.obs.tsdb import NS_PER_S, Tsdb

#: The verdict classes, in priority order: a storm signature outranks
#: queueing (a botnet flood also queues — name the cause, not the
#: symptom); ``queueing_collapse`` is sojourn burn with no attack
#: signature; ``none`` is a healthy window.
VERDICTS: Tuple[str, ...] = (
    "suci_replay",
    "auts_resync",
    "nas_fuzz",
    "botnet_ddos",
    "queueing_collapse",
    "none",
)

#: Storm verdicts — the classes whose evidence is hostile-cell traffic.
ATTACK_VERDICTS: Tuple[str, ...] = (
    "suci_replay", "auts_resync", "nas_fuzz", "botnet_ddos",
)


@dataclass(frozen=True)
class DetectorConfig:
    """Thresholds for one classification window."""

    #: gNB names carrying hostile ingress (repro.security.attacks).
    attack_cell_prefix: str = "gnb-atk-"
    #: The survivability campaign's registration deadline (ms).
    deadline_ms: float = 250.0
    #: Lookback per verdict (seconds of scraped history).
    window_s: float = 4.0
    #: Hostile-cell arrival rate below this is noise, not a storm.
    min_attack_rate_per_s: float = 4.0
    #: A signature (resync / fuzz-error / accept) rate at least this
    #: fraction of the hostile arrival rate names the storm kind.
    signature_fraction: float = 0.3


@dataclass(frozen=True)
class Classification:
    """One per-window verdict with the evidence that produced it.

    ``exemplar_trace_ids`` cites victim-side traces: trace ids whose
    sojourn exemplars the legitimate cells recorded inside the verdict
    window.  Empty on ``none`` verdicts and on runs without a
    trace-context-armed tracer.
    """

    at_ns: int
    verdict: str
    evidence: Dict[str, float]
    exemplar_trace_ids: Tuple[str, ...] = ()

    def to_dict(self, base_ns: int = 0) -> Dict[str, Any]:
        return {
            "at_s": round((self.at_ns - base_ns) / NS_PER_S, 6),
            "verdict": self.verdict,
            "evidence": {k: round(v, 6) for k, v in sorted(self.evidence.items())},
            "exemplar_trace_ids": list(self.exemplar_trace_ids),
        }


class AttackClassifier:
    """Deterministic per-window attack-class verdicts over a Tsdb.

    Pure reads: rates and windowed means over series the scraper already
    ingests.  The decision tree mirrors how the storms differ *at the
    defender*:

    * hostile-cell arrivals above the noise floor → a storm; its kind
      comes from signature fractions (resyncs ≈ arrivals for forged-AUTS,
      protocol errors ≈ half the arrivals for NAS fuzz, accepts ≈
      arrivals for a credentialed botnet, none of the above for replay);
    * no storm but legit sojourn at/over the deadline → queueing
      collapse (the class PR 8 could not see);
    * otherwise healthy.
    """

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        self.config = config or DetectorConfig()

    # ------------------------------------------------------------ queries

    def _cell_rate(self, tsdb: Tsdb, name: str, window_ns: int, at_ns: int,
                   hostile: bool) -> float:
        """Summed per-second rate of ``name`` over (non-)hostile cells."""
        prefix = self.config.attack_cell_prefix
        total = 0.0
        for series in tsdb.series_named(name):
            labels = dict(series.labels)
            if labels.get("gnb", "").startswith(prefix) is hostile:
                total += tsdb.rate(name, window_ns, at_ns, **labels)
        return total

    def _total_rate(self, tsdb: Tsdb, name: str, window_ns: int,
                    at_ns: int) -> float:
        return sum(
            tsdb.rate(name, window_ns, at_ns, **dict(series.labels))
            for series in tsdb.series_named(name)
        )

    def _legit_sojourn_mean(self, tsdb: Tsdb, window_ns: int,
                            at_ns: int) -> Optional[float]:
        """Attempt-weighted mean sojourn across every legitimate cell."""
        prefix = self.config.attack_cell_prefix
        count = total = 0.0
        for series in tsdb.series_named("gnb_registration_sojourn_ms_count"):
            labels = dict(series.labels)
            if labels.get("gnb", "").startswith(prefix):
                continue
            count += tsdb.increase(series.name, window_ns, at_ns, **labels)
            total += tsdb.increase(
                "gnb_registration_sojourn_ms_sum", window_ns, at_ns, **labels
            )
        return total / count if count > 0 else None

    # ------------------------------------------------------------ verdict

    def classify_at(self, tsdb: Tsdb, at_ns: int) -> Classification:
        cfg = self.config
        window_ns = int(cfg.window_s * NS_PER_S)
        attack_rate = self._cell_rate(
            tsdb, "amf_nas_registration_arrivals_total", window_ns, at_ns,
            hostile=True,
        )
        sojourn_mean = self._legit_sojourn_mean(tsdb, window_ns, at_ns)
        evidence: Dict[str, float] = {
            "attack_arrival_rate_per_s": attack_rate,
            "legit_sojourn_mean_ms": (
                sojourn_mean if sojourn_mean is not None else 0.0
            ),
        }
        if attack_rate >= cfg.min_attack_rate_per_s:
            resync_frac = self._total_rate(
                tsdb, "amf_auth_resync_requests_total", window_ns, at_ns
            ) / attack_rate
            fuzz_frac = self._total_rate(
                tsdb, "amf_nas_protocol_errors_total", window_ns, at_ns
            ) / attack_rate
            accept_frac = self._cell_rate(
                tsdb, "amf_nas_registration_accepted_total", window_ns, at_ns,
                hostile=True,
            ) / attack_rate
            evidence.update(
                resync_fraction=resync_frac,
                fuzz_error_fraction=fuzz_frac,
                hostile_accept_fraction=accept_frac,
            )
            if resync_frac >= cfg.signature_fraction:
                verdict = "auts_resync"
            elif fuzz_frac >= cfg.signature_fraction:
                verdict = "nas_fuzz"
            elif accept_frac >= cfg.signature_fraction:
                verdict = "botnet_ddos"
            else:
                # Hostile volume with no credential, resync or protocol
                # signature: replayed captures failing authentication.
                verdict = "suci_replay"
        elif sojourn_mean is not None and sojourn_mean >= cfg.deadline_ms:
            verdict = "queueing_collapse"
        else:
            verdict = "none"
        exemplar_ids: Tuple[str, ...] = ()
        if verdict != "none":
            # Cite victim-side traces: sojourn exemplars the legitimate
            # cells recorded inside the verdict window (hostile cells'
            # own traffic is the weapon, not the evidence).
            prefix = cfg.attack_cell_prefix
            cited = set()
            for labels_items, _timeline in tsdb.exemplars_named(
                "gnb_registration_sojourn_ms"
            ):
                labels = dict(labels_items)
                if labels.get("gnb", "").startswith(prefix):
                    continue
                cited.update(
                    tsdb.exemplars_in_window(
                        "gnb_registration_sojourn_ms", window_ns, at_ns,
                        **labels,
                    )
                )
            exemplar_ids = tuple(sorted(cited))
        return Classification(
            at_ns=at_ns, verdict=verdict, evidence=evidence,
            exemplar_trace_ids=exemplar_ids,
        )

    def classify(self, tsdb: Tsdb) -> List[Classification]:
        """One verdict per recorded scrape, replaying the timeline."""
        return [self.classify_at(tsdb, at_ns) for at_ns in tsdb.scrape_times]


@dataclass(frozen=True)
class GovernorConfig:
    """Hysteresis and response shape for the closed loop.

    The response rates are the survivability-calibrated ones from
    ``repro.experiments.survivability._defense_configs`` — matched to the
    campaign's legitimate offered load so an armed response sheds the
    storm, not the subscribers.
    """

    #: Consecutive hot scrapes before arming.  1 by design: a verdict is
    #: already smoothed over the detector's multi-second window, and at
    #: storm rates every scrape of delay costs legitimate deadlines.
    arm_after: int = 1
    disarm_after: int = 8    # consecutive quiet scrapes before stand-down
    #: Consecutive *burning* scrapes while armed before adding the
    #: breaker.  Burn must persist — the long burn window keeps reading
    #: collapse-era sojourns for a while after recovery, and escalating
    #: then would shed legitimate initial attaches for nothing.
    escalate_after: int = 4
    # Ingress response (attack verdicts): per-source + per-gNB + global.
    source_rate_per_s: float = 0.25
    source_burst: float = 2.0
    gnb_rate_per_s: float = 6.0
    gnb_burst: float = 6.0
    bucket_rate_per_s: float = 50.0
    bucket_burst: float = 50.0
    # Overload response (queueing collapse / unattributed sojourn burn).
    breaker_max_per_s: float = 30.0
    breaker_window_s: float = 1.0
    breaker_cooldown_s: float = 2.0
    max_pending: int = 512


class AdmissionGovernor:
    """Scraper observer that arms/tunes AMF admission from verdicts.

    Subscribe via ``scraper.subscribe(governor)``; each scrape it
    classifies the fresh window and checks the sojourn SLOs' burn.  The
    loop is tighten-only while hot: attack verdicts arm the ingress
    defenses (per-source buckets + per-gNB guards + a global cap —
    shedding at the cell serving the storm), sojourn burn without an
    attack signature arms the overload breaker (TS 24.501 congestion
    control: shed fresh attaches, keep returning subscribers), and burn
    that persists after ingress arming escalates to the breaker too.
    ``disarm_after`` quiet scrapes restore the pre-governor baseline.

    Quiescent-path contract: a governor over a healthy testbed performs
    only Tsdb reads and integer bookkeeping — no clock advance, no RNG
    draw, no admission change — so golden clocks stay byte-identical.
    """

    def __init__(
        self,
        amf: Any,
        classifier: Optional[AttackClassifier] = None,
        slos: Sequence[Any] = (),
        config: Optional[GovernorConfig] = None,
    ) -> None:
        self.amf = amf
        self.classifier = classifier or AttackClassifier()
        #: Burn-rate objectives (typically the SojournSlo subset) whose
        #: firing counts as "hot" even without an attack signature.
        self.slos = list(slos)
        self.config = config or GovernorConfig()
        self._baseline_admission = amf.admission
        self._baseline_max_pending = amf.max_pending_sessions
        self.armed: Tuple[str, ...] = ()
        self.hot_streak = 0
        self.quiet_streak = 0
        self._burn_streak_armed = 0
        self.scrapes_seen = 0
        self.actions: List[Dict[str, Any]] = []

    # ------------------------------------------------------------- burn

    def _burning(self, tsdb: Tsdb, at_ns: int) -> bool:
        for slo in self.slos:
            for window in slo.windows:
                if (
                    slo.burn_rate(tsdb, window.long_ns, at_ns) >= window.factor
                    and slo.burn_rate(tsdb, window.short_ns, at_ns)
                    >= window.factor
                ):
                    return True
        return False

    # ---------------------------------------------------------- response

    def _admission_config(self, defenses: Tuple[str, ...]) -> AdmissionConfig:
        cfg = self.config
        kwargs: Dict[str, Any] = {}
        if "source" in defenses:
            kwargs.update(
                per_source_rate_per_s=cfg.source_rate_per_s,
                per_source_burst=cfg.source_burst,
                bucket_rate_per_s=cfg.bucket_rate_per_s,
                bucket_burst=cfg.bucket_burst,
            )
        if "gnb" in defenses:
            kwargs.update(
                gnb_rate_per_s=cfg.gnb_rate_per_s, gnb_burst=cfg.gnb_burst
            )
        if "breaker" in defenses:
            kwargs.update(
                breaker_max_per_s=cfg.breaker_max_per_s,
                breaker_window_s=cfg.breaker_window_s,
                breaker_cooldown_s=cfg.breaker_cooldown_s,
            )
        return AdmissionConfig(**kwargs)

    def _apply(self, action: str, verdict: str, defenses: Tuple[str, ...],
               at_ns: int) -> None:
        self.armed = defenses
        if defenses:
            self.amf.admission = AdmissionController(
                self._admission_config(defenses)
            )
            if "breaker" in defenses:
                self.amf.max_pending_sessions = self.config.max_pending
        else:
            self.amf.admission = self._baseline_admission
            self.amf.max_pending_sessions = self._baseline_max_pending
        self.actions.append(
            {
                "at_ns": at_ns,
                "action": action,
                "verdict": verdict,
                "defenses": list(defenses),
            }
        )

    # ---------------------------------------------------------- observer

    def on_scrape(self, tsdb: Tsdb, now_ns: int) -> None:
        self.scrapes_seen += 1
        verdict = self.classifier.classify_at(tsdb, now_ns).verdict
        burning = self._burning(tsdb, now_ns)
        hot = verdict != "none" or burning
        if hot:
            self.hot_streak += 1
            self.quiet_streak = 0
        else:
            self.quiet_streak += 1
            self.hot_streak = 0
        if self.armed and burning:
            self._burn_streak_armed += 1
        elif not burning:
            self._burn_streak_armed = 0

        cfg = self.config
        if hot and not self.armed and self.hot_streak >= cfg.arm_after:
            if verdict in ATTACK_VERDICTS:
                self._apply("arm", verdict, ("source", "gnb"), now_ns)
            else:
                # queueing_collapse, or sojourn burn with a healthy
                # verdict (divergence): shed load, keep returning UEs.
                self._apply("arm", verdict, ("breaker",), now_ns)
            self._burn_streak_armed = 0
        elif (
            self.armed
            and "breaker" not in self.armed
            and self._burn_streak_armed >= cfg.escalate_after
        ):
            # Ingress defenses did not stop a *sustained* burn: escalate.
            self._apply(
                "escalate", verdict, tuple(self.armed) + ("breaker",), now_ns
            )
            self._burn_streak_armed = 0
        elif self.armed and self.quiet_streak >= cfg.disarm_after:
            self._apply("stand_down", verdict, (), now_ns)
            self._burn_streak_armed = 0

    # ------------------------------------------------------------ export

    def to_dict(self, base_ns: int = 0) -> Dict[str, Any]:
        return {
            "armed": list(self.armed),
            "scrapes_seen": self.scrapes_seen,
            "actions": [
                {
                    "at_s": round((a["at_ns"] - base_ns) / NS_PER_S, 6),
                    "action": a["action"],
                    "verdict": a["verdict"],
                    "defenses": a["defenses"],
                }
                for a in self.actions
            ],
        }


# --------------------------------------------------------------- evaluation


def _scenario_names(include_none: bool = True) -> List[str]:
    names = list(ATTACK_VERDICTS) + ["queueing_collapse"]
    return (["none"] + names) if include_none else names


def evaluate_detector(
    seed: int = 29,
    horizon_s: float = 6.0,
    legit: int = 8,
    attack_rate_per_s: float = 80.0,
    cadence_s: float = 1.0,
    config: Optional[DetectorConfig] = None,
) -> Dict[str, Any]:
    """Confusion-matrix evaluation against seeded ground truth.

    One scenario per verdict class: four pure-kind storms (the seeded
    schedule *is* the ground truth), a legit flash crowd for
    ``queueing_collapse`` (offered load ≈2× service capacity through the
    tracking area's own gNB — no hostile cell anywhere), and an
    attack-free control for ``none``.  Each scenario runs on a fresh
    warmed slice with defenses disarmed (detection must work *before*
    anything is armed); verdicts are scored per scrape from the first
    window with enough history (two cadences in).

    Deterministic: a fixed ``(seed, horizon, rates, cadence)`` yields a
    byte-identical result dict.
    """
    # Lazy imports: obs must stay importable without the testbed stack.
    from repro.experiments.harness import warmed_testbed
    from repro.obs.scrape import Scraper
    from repro.paka.deploy import IsolationMode
    from repro.security.attacks import (
        AttackPlane,
        StormKind,
        StormProfile,
        generate_storm,
    )

    storm_of = {
        "suci_replay": StormKind.SUCI_REPLAY,
        "auts_resync": StormKind.AUTS_RESYNC,
        "nas_fuzz": StormKind.NAS_FUZZ,
        "botnet_ddos": StormKind.BOTNET_REGISTER,
    }
    classifier = AttackClassifier(config)
    eval_from_ns = int(2 * cadence_s * NS_PER_S)
    confusion: Dict[str, Dict[str, int]] = {}
    scenarios: List[Dict[str, Any]] = []
    correct = scored = 0

    for expected in _scenario_names():
        testbed = warmed_testbed(IsolationMode.SGX, seed=seed)
        if expected == "queueing_collapse":
            # Flash crowd: the whole legit population arrives in the
            # first quarter of the horizon (≈2× service capacity).
            n_legit = max(legit, int(horizon_s * 10))
            burst_s = horizon_s / 4.0
            gap_ns = int(burst_s / n_legit * NS_PER_S)
        else:
            n_legit = legit
            gap_ns = int(horizon_s / n_legit * NS_PER_S)
        ues = [testbed.add_subscriber() for _ in range(n_legit)]

        storm = ()
        plane = None
        if expected in storm_of:
            storm = generate_storm(
                seed, horizon_s, attack_rate_per_s,
                profile=StormProfile(mix=((storm_of[expected], 1.0),)),
            )
            plane = AttackPlane(testbed)

        timeline: List[Tuple[int, int, Any]] = [
            (index * gap_ns, 0, index) for index in range(n_legit)
        ]
        timeline.extend((event.at_ns, 1, event) for event in storm)
        timeline.sort(key=lambda entry: (entry[0], entry[1]))

        scraper = Scraper.for_testbed(
            testbed, cadence_s=cadence_s, attack_plane=plane
        ).install(testbed.host)
        clock = testbed.host.clock
        start_ns = clock.now_ns
        for at_ns, _, payload in timeline:
            target_ns = start_ns + at_ns
            remaining_ns = target_ns - clock.now_ns
            if remaining_ns > 0:
                testbed.idle(remaining_ns / NS_PER_S)
            if isinstance(payload, int):
                testbed.gnb.register(
                    ues[payload], establish_session=False,
                    arrival_ns=target_ns,
                )
            else:
                plane.execute(payload)
        horizon_end = start_ns + int(horizon_s * NS_PER_S)
        if clock.now_ns < horizon_end:
            testbed.idle((horizon_end - clock.now_ns) / NS_PER_S)
        scraper.uninstall(testbed.host)

        verdicts = [
            classifier.classify_at(scraper.tsdb, at_ns)
            for at_ns in scraper.tsdb.scrape_times
            if at_ns - start_ns >= eval_from_ns
        ]
        row = confusion.setdefault(
            expected, {verdict: 0 for verdict in VERDICTS}
        )
        for classification in verdicts:
            row[classification.verdict] += 1
            scored += 1
            if classification.verdict == expected:
                correct += 1
        first_hit = next(
            (c.at_ns for c in verdicts if c.verdict == expected), None
        )
        scenarios.append(
            {
                "expected": expected,
                "scrapes_scored": len(verdicts),
                "detection_latency_s": (
                    None if first_hit is None
                    else round((first_hit - start_ns) / NS_PER_S, 6)
                ),
                "modal_verdict": max(
                    VERDICTS, key=lambda v: (row[v], )
                ),
            }
        )

    return {
        "seed": seed,
        "horizon_s": horizon_s,
        "cadence_s": cadence_s,
        "attack_rate_per_s": attack_rate_per_s,
        "confusion": confusion,
        "accuracy": round(correct / scored, 6) if scored else 0.0,
        "scenarios": scenarios,
    }
