"""Registration-scoped span trees over the simulated clock.

A :class:`Span` is an interval of *simulated* time with a name, a kind
from the paper's cost taxonomy, free-form tags and children.  The
:class:`Tracer` maintains the open-span stack; instrumentation points
(the gNB registration loop, the HTTP client/server, the Gramine OCALL
path) call :meth:`Tracer.begin`/:meth:`Tracer.end` around the clock
reads they already make, so span boundaries are **bit-identical** to the
``clock.measure()`` windows the experiment series record.

Span kinds (the taxonomy):

``registration``
    Root: one UE's full registration through the gNB.
``nas``
    One NAS uplink/downlink exchange (air + N2 + AMF handling).
``sbi.request``
    A client-observed SBI exchange — the paper's response time ``R``.
``sbi.server``
    The server's busy window around one request (L_T + reactor chatter).
``L_T``
    The request-received → response-sent window (the paper's total
    latency).  ``L_N = L_T - L_F`` is derived, never measured twice.
``L_F``
    The handler invocation (the paper's functional latency).
``sgx.ocall``
    One shielded syscall: EEXIT + host work + EENTER.  Tagged with the
    rounded cost components ``shield_ns`` / ``copy_ns`` / ``host_ns`` /
    ``transition_ns`` (``rpc_ns`` in exitless mode).

Distributed-trace identity rides on top of the span tree: a tracer armed
with a ``trace_seed`` stamps every span with a deterministic
``trace_id`` / ``span_id`` / ``parent_id`` derived clocklessly from
``(seed, SUPI, attempt)`` — no wall clock, no ``random`` — so the same
run always mints the same ids.  The HTTP client materialises the W3C
``traceparent`` header from the open ``sbi.request`` span, and finished
trees land in a bounded :class:`TraceStore` under deterministic
tail-based sampling (every failed or deadline-violating trace is kept;
healthy ones are head-sampled 1/N by trace-id hash).

Tracing never advances the clock — a traced run spends exactly the same
simulated nanoseconds as an untraced one.
"""

from __future__ import annotations

import re
from contextlib import contextmanager
from hashlib import blake2b
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.sim.clock import NS_PER_US, SimClock


class SpanNestingError(RuntimeError):
    """A span was closed out of LIFO order (see
    :class:`~repro.sim.clock.MeasurementNestingError` for the clock-side
    twin of this invariant)."""


class Span:
    """One interval of simulated time in a registration's span tree."""

    __slots__ = (
        "name", "kind", "start_ns", "end_ns", "tags", "children",
        "trace_id", "span_id", "parent_id",
    )

    def __init__(self, name: str, kind: str, start_ns: int, **tags: Any) -> None:
        self.name = name
        self.kind = kind
        self.start_ns = start_ns
        self.end_ns = start_ns
        self.tags: Dict[str, Any] = tags
        self.children: List["Span"] = []
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None

    @property
    def ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def us(self) -> float:
        return self.ns / NS_PER_US

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> List["Span"]:
        """All descendants (including self) of the given kind."""
        return [span for span in self.walk() if span.kind == kind]

    def child_of_kind(self, kind: str) -> Optional["Span"]:
        for child in self.children:
            if child.kind == kind:
                return child
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready tree form.

        Tags are emitted key-sorted so the serialized tree is byte-stable
        regardless of the tag order at the instrumentation site.  When the
        span carries trace identity (tracer armed with a ``trace_seed``)
        the ``trace_id`` / ``span_id`` / ``parent_id`` fields are included.
        """
        payload: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "tags": {key: self.tags[key] for key in sorted(self.tags)},
            "children": [child.to_dict() for child in self.children],
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
            payload["span_id"] = self.span_id
            payload["parent_id"] = self.parent_id
        return payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, kind={self.kind!r}, us={self.us:.2f}, "
            f"children={len(self.children)})"
        )


# Freelist of recycled Span objects, shared across tracers.  An armed
# tracer allocates one Span per instrumentation point (~1.1k per SGX
# registration, most of them sgx.ocall leaves); recycling a consumed tree
# lets the next trace reuse the objects instead of exercising the
# allocator, which is where most of the armed-tracer host overhead goes.
# ``Tracer.begin`` fully re-initialises every slot (name, kind, both
# timestamps, tags, children), so a recycled span can never leak state.
_SPAN_POOL: List[Span] = []
_SPAN_POOL_CAP = 8192


class Tracer:
    """Builds span trees from begin/end calls against one clock.

    Hot paths guard with ``tracer is not None and tracer.enabled`` — a
    disabled tracer (or the default ``host.tracer = None``) costs one
    attribute read and one comparison per instrumentation point.

    With ``trace_seed`` set, :meth:`start_trace` opens a deterministic
    trace context for one registration: every span begun until
    :meth:`end_trace` is stamped with the context's ``trace_id`` and a
    sequence-derived ``span_id`` (parent = the enclosing open span).  A
    ``store`` gives finished trees somewhere to go (see
    :class:`TraceStore`); offering and recycling is the caller's job.
    """

    def __init__(
        self,
        clock: SimClock,
        enabled: bool = True,
        trace_seed: Optional[int] = None,
        store: Optional["TraceStore"] = None,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self.trace_seed = trace_seed
        self.store = store
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._trace_id: Optional[str] = None
        self._trace_supi: Optional[str] = None
        self._trace_attempt = 0
        self._span_seq = 0
        self._attempts: Dict[str, int] = {}

    # ------------------------------------------------------------- spans

    def begin(self, name: str, kind: str = "", **tags: Any) -> Span:
        """Open a span at the current simulated instant."""
        pool = _SPAN_POOL
        if pool:
            # Freelist hit: overwrite every slot.  ``tags`` is a fresh
            # dict built for this call, so taking ownership of it (the
            # same thing the constructor does) cannot leak prior tags;
            # the children list was emptied when the span was recycled.
            span = pool.pop()
            span.name = name
            span.kind = kind
            now = self.clock.now_ns
            span.start_ns = now
            span.end_ns = now
            span.tags = tags
        else:
            span = Span(name, kind, self.clock.now_ns, **tags)
        trace_id = self._trace_id
        if trace_id is not None:
            seq = self._span_seq
            self._span_seq = seq + 1
            span.trace_id = trace_id
            span.span_id = span_context_id(trace_id, seq)
            span.parent_id = self._stack[-1].span_id if self._stack else None
        else:
            span.trace_id = None
            span.span_id = None
            span.parent_id = None
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def annotate(self, **tags: Any) -> None:
        """Tag the innermost open span (no new span, no clock read).

        NF handlers that sit *between* instrumentation points (the AMF's
        NAS entry is a direct call, not an SBI hop) use this to leave
        their identity on the span that covers them.
        """
        if self._stack:
            self._stack[-1].tags.update(tags)

    # ----------------------------------------------------- trace context

    @property
    def current_trace_id(self) -> Optional[str]:
        return self._trace_id

    def start_trace(self, supi: str) -> Optional[str]:
        """Open a deterministic trace context for one registration.

        Returns the minted ``trace_id``, or ``None`` when the tracer has
        no ``trace_seed`` (identity off — plain span trees as before).
        The id is ``blake2b("trace:{seed}:{supi}:{attempt}")`` where
        ``attempt`` counts this SUPI's registrations under this tracer —
        clockless, random-free, reproducible.
        """
        if self.trace_seed is None:
            return None
        attempt = self._attempts.get(supi, 0) + 1
        self._attempts[supi] = attempt
        trace_id = trace_context_id(self.trace_seed, supi, attempt)
        self._trace_id = trace_id
        self._trace_supi = supi
        self._trace_attempt = attempt
        self._span_seq = 0
        return trace_id

    def end_trace(self) -> Tuple[Optional[str], Optional[str], int]:
        """Close the open trace context; returns (trace_id, supi, attempt)."""
        closed = (self._trace_id, self._trace_supi, self._trace_attempt)
        self._trace_id = None
        self._trace_supi = None
        self._span_seq = 0
        return closed

    def recycle(self, span: Span) -> None:
        """Return ``span`` and its whole subtree to the span freelist.

        The caller asserts the tree is fully consumed: after this call the
        spans, their ``tags`` dicts and ``children`` lists must not be
        touched again (children lists are emptied in place).  If ``span``
        is one of this tracer's roots it is detached first.
        """
        try:
            self.roots.remove(span)
        except ValueError:
            pass
        _recycle_tree(span)

    def end(self, span: Span, **tags: Any) -> Span:
        """Close ``span`` at the current instant; spans close LIFO."""
        popped = self._stack.pop() if self._stack else None
        if popped is not span:
            raise SpanNestingError(
                f"span {span.name!r} closed out of order; innermost open "
                f"span is {popped!r}"
            )
        span.end_ns = self.clock.now_ns
        if tags:
            span.tags.update(tags)
        return span

    @contextmanager
    def span(self, name: str, kind: str = "", **tags: Any) -> Iterator[Span]:
        opened = self.begin(name, kind, **tags)
        try:
            yield opened
        finally:
            self.end(opened)

    # --------------------------------------------------------- lifecycle

    @property
    def depth(self) -> int:
        return len(self._stack)

    def clear(self, recycle: bool = False) -> None:
        """Drop all finished roots; ``recycle=True`` also returns every
        span tree to the freelist (same caller contract as
        :meth:`recycle`)."""
        if self._stack:
            raise SpanNestingError(
                f"clear() with {len(self._stack)} span(s) still open"
            )
        if recycle:
            for root in self.roots:
                _recycle_tree(root)
        self.roots.clear()


def _recycle_tree(span: Span) -> None:
    pool = _SPAN_POOL
    stack = [span]
    while stack:
        current = stack.pop()
        children = current.children
        if children:
            stack.extend(children)
            children.clear()
        if len(pool) < _SPAN_POOL_CAP:
            pool.append(current)


# --------------------------------------------------------------------------
# Deterministic trace identity (W3C trace-context shaped)


def trace_context_id(seed: int, supi: str, attempt: int) -> str:
    """128-bit hex trace id from (seed, SUPI, attempt) — clockless."""
    return blake2b(
        f"trace:{seed}:{supi}:{attempt}".encode(), digest_size=16
    ).hexdigest()


def span_context_id(trace_id: str, seq: int) -> str:
    """64-bit hex span id from (trace_id, begin-order sequence)."""
    return blake2b(f"{trace_id}:{seq}".encode(), digest_size=8).hexdigest()


def traceparent_of(trace_id: str, span_id: str) -> str:
    """W3C ``traceparent`` header value (version 00, sampled flag set)."""
    return f"00-{trace_id}-{span_id}-01"


_TRACEPARENT_RE = re.compile(r"^00-([0-9a-f]{32})-([0-9a-f]{16})-01$")


def parse_traceparent(header: str) -> Optional[Tuple[str, str]]:
    """``(trace_id, span_id)`` from a ``traceparent`` value, or None."""
    match = _TRACEPARENT_RE.match(header)
    if match is None:
        return None
    return match.group(1), match.group(2)


def span_from_dict(data: Mapping[str, Any]) -> Span:
    """Rebuild a live :class:`Span` tree from its ``to_dict`` form.

    Stored traces are snapshotted to plain dicts (so the originals can be
    recycled); this inverts the snapshot so dict trees can flow back into
    Span-consuming code — :func:`format_span_tree` rendering and the
    float-µs :func:`registration_breakdown` cross-check.  Round-trip is
    exact: ``span_from_dict(span.to_dict()).to_dict() == span.to_dict()``.
    """
    span = Span(data["name"], data["kind"], int(data["start_ns"]), **data["tags"])
    span.end_ns = int(data["end_ns"])
    span.trace_id = data.get("trace_id")
    span.span_id = data.get("span_id")
    span.parent_id = data.get("parent_id")
    span.children = [span_from_dict(child) for child in data["children"]]
    return span


class TraceStore:
    """Bounded store of finished trace trees with deterministic sampling.

    Tail-based policy: every failed registration and every registration
    whose sojourn exceeded the deadline is kept (``tail_failed`` /
    ``tail_deadline``); healthy registrations are head-sampled 1/N by a
    pure function of the trace id (``int(trace_id[:8], 16) % N == 0``) so
    the kept set is identical run-to-run and shard-count-independent.
    When the store overflows ``cap``, the oldest head-sampled record is
    evicted first (tail records are the valuable ones); with no
    head-sampled records left, the oldest record overall goes.

    Records are plain JSON-ready dicts so shard workers can ship them
    across process boundaries and :meth:`absorb` can merge them
    deterministically (insertion order = offer order = shard order).
    """

    __slots__ = (
        "cap", "sample_every", "deadline_ns", "records",
        "seen", "kept_tail", "kept_head", "evicted",
    )

    def __init__(
        self,
        cap: Optional[int] = 512,
        sample_every: int = 8,
        deadline_ms: float = 250.0,
    ) -> None:
        self.cap = cap
        self.sample_every = max(1, int(sample_every))
        self.deadline_ns = int(deadline_ms * 1_000_000)
        self.records: Dict[str, Dict[str, Any]] = {}
        self.seen = 0
        self.kept_tail = 0
        self.kept_head = 0
        self.evicted = 0

    def keep_reason(
        self, trace_id: str, success: bool, sojourn_ns: int
    ) -> Optional[str]:
        if not success:
            return "tail_failed"
        if sojourn_ns > self.deadline_ns:
            return "tail_deadline"
        if int(trace_id[:8], 16) % self.sample_every == 0:
            return "head_sample"
        return None

    def offer(
        self,
        root: Span,
        trace_id: str,
        supi: str,
        attempt: int,
        success: bool,
        sojourn_ns: int,
    ) -> bool:
        """Consider one finished registration tree; True if kept.

        The tree is snapshotted via :meth:`Span.to_dict`, so the caller
        is free to recycle the spans afterwards.
        """
        self.seen += 1
        reason = self.keep_reason(trace_id, success, sojourn_ns)
        if reason is None:
            return False
        if reason == "head_sample":
            self.kept_head += 1
        else:
            self.kept_tail += 1
        self.records[trace_id] = {
            "trace_id": trace_id,
            "supi": supi,
            "attempt": attempt,
            "success": bool(success),
            "sojourn_ns": int(sojourn_ns),
            "reason": reason,
            "start_ns": root.start_ns,
            "end_ns": root.end_ns,
            "duration_ns": root.ns,
            "root": root.to_dict(),
        }
        if self.cap is not None:
            while len(self.records) > self.cap:
                self._evict_one()
        return True

    def _evict_one(self) -> None:
        victim = None
        for trace_id, record in self.records.items():
            if record["reason"] == "head_sample":
                victim = trace_id
                break
        if victim is None:
            victim = next(iter(self.records))
        del self.records[victim]
        self.evicted += 1

    def get(self, trace_id: str) -> Optional[Dict[str, Any]]:
        return self.records.get(trace_id)

    def trace_ids(self) -> List[str]:
        return list(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (records in offer order)."""
        return {
            "cap": self.cap,
            "sample_every": self.sample_every,
            "deadline_ms": self.deadline_ns / 1_000_000,
            "seen": self.seen,
            "kept_tail": self.kept_tail,
            "kept_head": self.kept_head,
            "evicted": self.evicted,
            "records": list(self.records.values()),
        }

    def absorb(self, data: Mapping[str, Any], **extra_fields: Any) -> None:
        """Merge one worker's :meth:`to_dict` snapshot into this store.

        ``extra_fields`` (e.g. ``shard="3"``) are stamped onto each
        absorbed record.  Callers absorb shards in index order, so the
        merged record order is deterministic.
        """
        self.seen += int(data.get("seen", 0))
        self.kept_tail += int(data.get("kept_tail", 0))
        self.kept_head += int(data.get("kept_head", 0))
        self.evicted += int(data.get("evicted", 0))
        for record in data.get("records", ()):
            merged = dict(record)
            merged.update(extra_fields)
            self.records[merged["trace_id"]] = merged


def registration_breakdown(
    root: Span,
    module_servers: Mapping[str, str],
    module_runtimes: Optional[Mapping[str, str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Decompose one registration trace into the paper's tables.

    ``module_servers`` maps module short names (``eudm`` …) to their HTTP
    server names; ``module_runtimes`` maps them to enclave runtime names
    (the ``runtime`` tag on ``sgx.ocall`` spans).  Returns, per module::

        {"lf_us": ..., "lt_us": ..., "ln_us": ...,      # Fig 9 / Table II
         "r_us": ...,                                    # Fig 10
         "eenters": ..., "eexits": ..., "ocalls": ...,   # Table III
         "shield_us": ..., "copy_us": ..., "host_us": ...,
         "transition_us": ...}                           # L_N taxonomy

    L_F and L_T are the handler and receive-to-send window spans — the
    exact values the servers' metric series record; ``L_N`` is their
    difference, which is how the paper defines it.
    """
    server_to_module = {server: module for module, server in module_servers.items()}
    runtime_to_module = {
        runtime: module for module, runtime in (module_runtimes or {}).items()
    }
    breakdown: Dict[str, Dict[str, float]] = {
        module: {
            "lf_us": 0.0, "lt_us": 0.0, "ln_us": 0.0, "r_us": 0.0,
            "requests": 0, "eenters": 0, "eexits": 0, "ocalls": 0,
            "shield_us": 0.0, "copy_us": 0.0, "host_us": 0.0,
            "transition_us": 0.0,
        }
        for module in module_servers
    }

    for span in root.walk():
        if span.kind == "sbi.server":
            module = server_to_module.get(str(span.tags.get("server")))
            if module is None:
                continue
            row = breakdown[module]
            lt_span = span.child_of_kind("L_T")
            if lt_span is None:
                continue
            lf_span = lt_span.child_of_kind("L_F")
            row["requests"] += 1
            row["lt_us"] += lt_span.us
            if lf_span is not None:
                row["lf_us"] += lf_span.us
            row["ln_us"] = row["lt_us"] - row["lf_us"]
        elif span.kind == "sbi.request":
            module = server_to_module.get(str(span.tags.get("dst")))
            if module is not None:
                breakdown[module]["r_us"] += span.us
        elif span.kind == "sgx.ocall":
            module = runtime_to_module.get(str(span.tags.get("runtime")))
            if module is None:
                continue
            row = breakdown[module]
            row["ocalls"] += 1
            if not span.tags.get("exitless"):
                # One OCALL is exactly one EEXIT + one EENTER.
                row["eenters"] += 1
                row["eexits"] += 1
                row["transition_us"] += span.tags.get("transition_ns", 0) / 1_000.0
            row["shield_us"] += span.tags.get("shield_ns", 0) / 1_000.0
            row["copy_us"] += span.tags.get("copy_ns", 0) / 1_000.0
            row["host_us"] += span.tags.get("host_ns", 0) / 1_000.0
    return breakdown


def format_span_tree(span: Span, indent: int = 0) -> List[str]:
    """Human-readable tree, collapsing OCALL bursts into summary lines."""
    pad = "  " * indent
    tag_bits = ""
    interesting = {
        k: v for k, v in span.tags.items()
        if k in ("server", "dst", "path", "ue", "status", "success")
    }
    if interesting:
        tag_bits = " " + " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
    kind = f" [{span.kind}]" if span.kind else ""
    lines = [f"{pad}{span.name}{kind} {span.us:.1f} us{tag_bits}"]
    ocalls: Dict[str, int] = {}
    ocall_ns = 0
    for child in span.children:
        if child.kind == "sgx.ocall":
            ocalls[child.name] = ocalls.get(child.name, 0) + 1
            ocall_ns += child.ns
        else:
            lines.extend(format_span_tree(child, indent + 1))
    if ocalls:
        total = sum(ocalls.values())
        top = ", ".join(
            f"{name}x{count}"
            for name, count in sorted(ocalls.items(), key=lambda kv: -kv[1])[:4]
        )
        lines.append(
            f"{pad}  ({total} sgx.ocall spans, {ocall_ns / 1_000.0:.1f} us: {top})"
        )
    return lines
