"""Registration-scoped span trees over the simulated clock.

A :class:`Span` is an interval of *simulated* time with a name, a kind
from the paper's cost taxonomy, free-form tags and children.  The
:class:`Tracer` maintains the open-span stack; instrumentation points
(the gNB registration loop, the HTTP client/server, the Gramine OCALL
path) call :meth:`Tracer.begin`/:meth:`Tracer.end` around the clock
reads they already make, so span boundaries are **bit-identical** to the
``clock.measure()`` windows the experiment series record.

Span kinds (the taxonomy):

``registration``
    Root: one UE's full registration through the gNB.
``nas``
    One NAS uplink/downlink exchange (air + N2 + AMF handling).
``sbi.request``
    A client-observed SBI exchange — the paper's response time ``R``.
``sbi.server``
    The server's busy window around one request (L_T + reactor chatter).
``L_T``
    The request-received → response-sent window (the paper's total
    latency).  ``L_N = L_T - L_F`` is derived, never measured twice.
``L_F``
    The handler invocation (the paper's functional latency).
``sgx.ocall``
    One shielded syscall: EEXIT + host work + EENTER.  Tagged with the
    rounded cost components ``shield_ns`` / ``copy_ns`` / ``host_ns`` /
    ``transition_ns`` (``rpc_ns`` in exitless mode).

Tracing never advances the clock — a traced run spends exactly the same
simulated nanoseconds as an untraced one.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.sim.clock import NS_PER_US, SimClock


class SpanNestingError(RuntimeError):
    """A span was closed out of LIFO order (see
    :class:`~repro.sim.clock.MeasurementNestingError` for the clock-side
    twin of this invariant)."""


class Span:
    """One interval of simulated time in a registration's span tree."""

    __slots__ = ("name", "kind", "start_ns", "end_ns", "tags", "children")

    def __init__(self, name: str, kind: str, start_ns: int, **tags: Any) -> None:
        self.name = name
        self.kind = kind
        self.start_ns = start_ns
        self.end_ns = start_ns
        self.tags: Dict[str, Any] = tags
        self.children: List["Span"] = []

    @property
    def ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def us(self) -> float:
        return self.ns / NS_PER_US

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in start order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> List["Span"]:
        """All descendants (including self) of the given kind."""
        return [span for span in self.walk() if span.kind == kind]

    def child_of_kind(self, kind: str) -> Optional["Span"]:
        for child in self.children:
            if child.kind == kind:
                return child
        return None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready tree form."""
        return {
            "name": self.name,
            "kind": self.kind,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "tags": dict(self.tags),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, kind={self.kind!r}, us={self.us:.2f}, "
            f"children={len(self.children)})"
        )


# Freelist of recycled Span objects, shared across tracers.  An armed
# tracer allocates one Span per instrumentation point (~1.1k per SGX
# registration, most of them sgx.ocall leaves); recycling a consumed tree
# lets the next trace reuse the objects instead of exercising the
# allocator, which is where most of the armed-tracer host overhead goes.
# ``Tracer.begin`` fully re-initialises every slot (name, kind, both
# timestamps, tags, children), so a recycled span can never leak state.
_SPAN_POOL: List[Span] = []
_SPAN_POOL_CAP = 8192


class Tracer:
    """Builds span trees from begin/end calls against one clock.

    Hot paths guard with ``tracer is not None and tracer.enabled`` — a
    disabled tracer (or the default ``host.tracer = None``) costs one
    attribute read and one comparison per instrumentation point.
    """

    def __init__(self, clock: SimClock, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # ------------------------------------------------------------- spans

    def begin(self, name: str, kind: str = "", **tags: Any) -> Span:
        """Open a span at the current simulated instant."""
        pool = _SPAN_POOL
        if pool:
            # Freelist hit: overwrite every slot.  ``tags`` is a fresh
            # dict built for this call, so taking ownership of it (the
            # same thing the constructor does) cannot leak prior tags;
            # the children list was emptied when the span was recycled.
            span = pool.pop()
            span.name = name
            span.kind = kind
            now = self.clock.now_ns
            span.start_ns = now
            span.end_ns = now
            span.tags = tags
        else:
            span = Span(name, kind, self.clock.now_ns, **tags)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def recycle(self, span: Span) -> None:
        """Return ``span`` and its whole subtree to the span freelist.

        The caller asserts the tree is fully consumed: after this call the
        spans, their ``tags`` dicts and ``children`` lists must not be
        touched again (children lists are emptied in place).  If ``span``
        is one of this tracer's roots it is detached first.
        """
        try:
            self.roots.remove(span)
        except ValueError:
            pass
        _recycle_tree(span)

    def end(self, span: Span, **tags: Any) -> Span:
        """Close ``span`` at the current instant; spans close LIFO."""
        popped = self._stack.pop() if self._stack else None
        if popped is not span:
            raise SpanNestingError(
                f"span {span.name!r} closed out of order; innermost open "
                f"span is {popped!r}"
            )
        span.end_ns = self.clock.now_ns
        if tags:
            span.tags.update(tags)
        return span

    @contextmanager
    def span(self, name: str, kind: str = "", **tags: Any) -> Iterator[Span]:
        opened = self.begin(name, kind, **tags)
        try:
            yield opened
        finally:
            self.end(opened)

    # --------------------------------------------------------- lifecycle

    @property
    def depth(self) -> int:
        return len(self._stack)

    def clear(self, recycle: bool = False) -> None:
        """Drop all finished roots; ``recycle=True`` also returns every
        span tree to the freelist (same caller contract as
        :meth:`recycle`)."""
        if self._stack:
            raise SpanNestingError(
                f"clear() with {len(self._stack)} span(s) still open"
            )
        if recycle:
            for root in self.roots:
                _recycle_tree(root)
        self.roots.clear()


def _recycle_tree(span: Span) -> None:
    pool = _SPAN_POOL
    stack = [span]
    while stack:
        current = stack.pop()
        children = current.children
        if children:
            stack.extend(children)
            children.clear()
        if len(pool) < _SPAN_POOL_CAP:
            pool.append(current)


def registration_breakdown(
    root: Span,
    module_servers: Mapping[str, str],
    module_runtimes: Optional[Mapping[str, str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Decompose one registration trace into the paper's tables.

    ``module_servers`` maps module short names (``eudm`` …) to their HTTP
    server names; ``module_runtimes`` maps them to enclave runtime names
    (the ``runtime`` tag on ``sgx.ocall`` spans).  Returns, per module::

        {"lf_us": ..., "lt_us": ..., "ln_us": ...,      # Fig 9 / Table II
         "r_us": ...,                                    # Fig 10
         "eenters": ..., "eexits": ..., "ocalls": ...,   # Table III
         "shield_us": ..., "copy_us": ..., "host_us": ...,
         "transition_us": ...}                           # L_N taxonomy

    L_F and L_T are the handler and receive-to-send window spans — the
    exact values the servers' metric series record; ``L_N`` is their
    difference, which is how the paper defines it.
    """
    server_to_module = {server: module for module, server in module_servers.items()}
    runtime_to_module = {
        runtime: module for module, runtime in (module_runtimes or {}).items()
    }
    breakdown: Dict[str, Dict[str, float]] = {
        module: {
            "lf_us": 0.0, "lt_us": 0.0, "ln_us": 0.0, "r_us": 0.0,
            "requests": 0, "eenters": 0, "eexits": 0, "ocalls": 0,
            "shield_us": 0.0, "copy_us": 0.0, "host_us": 0.0,
            "transition_us": 0.0,
        }
        for module in module_servers
    }

    for span in root.walk():
        if span.kind == "sbi.server":
            module = server_to_module.get(str(span.tags.get("server")))
            if module is None:
                continue
            row = breakdown[module]
            lt_span = span.child_of_kind("L_T")
            if lt_span is None:
                continue
            lf_span = lt_span.child_of_kind("L_F")
            row["requests"] += 1
            row["lt_us"] += lt_span.us
            if lf_span is not None:
                row["lf_us"] += lf_span.us
            row["ln_us"] = row["lt_us"] - row["lf_us"]
        elif span.kind == "sbi.request":
            module = server_to_module.get(str(span.tags.get("dst")))
            if module is not None:
                breakdown[module]["r_us"] += span.us
        elif span.kind == "sgx.ocall":
            module = runtime_to_module.get(str(span.tags.get("runtime")))
            if module is None:
                continue
            row = breakdown[module]
            row["ocalls"] += 1
            if not span.tags.get("exitless"):
                # One OCALL is exactly one EEXIT + one EENTER.
                row["eenters"] += 1
                row["eexits"] += 1
                row["transition_us"] += span.tags.get("transition_ns", 0) / 1_000.0
            row["shield_us"] += span.tags.get("shield_ns", 0) / 1_000.0
            row["copy_us"] += span.tags.get("copy_ns", 0) / 1_000.0
            row["host_us"] += span.tags.get("host_ns", 0) / 1_000.0
    return breakdown


def format_span_tree(span: Span, indent: int = 0) -> List[str]:
    """Human-readable tree, collapsing OCALL bursts into summary lines."""
    pad = "  " * indent
    tag_bits = ""
    interesting = {
        k: v for k, v in span.tags.items()
        if k in ("server", "dst", "path", "ue", "status", "success")
    }
    if interesting:
        tag_bits = " " + " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
    kind = f" [{span.kind}]" if span.kind else ""
    lines = [f"{pad}{span.name}{kind} {span.us:.1f} us{tag_bits}"]
    ocalls: Dict[str, int] = {}
    ocall_ns = 0
    for child in span.children:
        if child.kind == "sgx.ocall":
            ocalls[child.name] = ocalls.get(child.name, 0) + 1
            ocall_ns += child.ns
        else:
            lines.extend(format_span_tree(child, indent + 1))
    if ocalls:
        total = sum(ocalls.values())
        top = ", ".join(
            f"{name}x{count}"
            for name, count in sorted(ocalls.items(), key=lambda kv: -kv[1])[:4]
        )
        lines.append(
            f"{pad}  ({total} sgx.ocall spans, {ocall_ns / 1_000.0:.1f} us: {top})"
        )
    return lines
