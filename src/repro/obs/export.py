"""JSON and Prometheus-text exporters for a :class:`MetricsRegistry`.

Both formats are *parseable back* — ``registry_from_dict`` and
``parse_prometheus_text`` reconstruct the counter/gauge values — so the
round-trip is a test surface, not a one-way dump.  The Prometheus output
follows the text exposition format: counters end in ``_total``-style
verbatim names, histograms are exposed summary-style with ``_count`` /
``_sum`` / ``_min`` / ``_max`` plus window quantiles.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple

from repro.obs.metrics import LabelItems, MetricsRegistry

_QUANTILES = (50.0, 95.0, 99.0)
_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _labels_dict(labels: LabelItems) -> Dict[str, str]:
    return {k: v for k, v in labels}


# ----------------------------------------------------------------- JSON


def registry_to_dict(registry: MetricsRegistry) -> Dict[str, Any]:
    """Loss-free dictionary form (histogram windows included)."""
    return {
        "counters": [
            {"name": c.name, "labels": _labels_dict(c.labels), "value": c.value}
            for c in registry.counters()
        ],
        "gauges": [
            {"name": g.name, "labels": _labels_dict(g.labels), "value": g.value}
            for g in registry.gauges()
        ],
        "histograms": [
            {
                "name": h.name,
                "labels": _labels_dict(h.labels),
                "count": h.count,
                "sum": h.total,
                "min": h.minimum,
                "max": h.maximum,
                "window": list(h.series),
                **(
                    {
                        "exemplars": {
                            le: list(h.exemplars[le]) for le in sorted(h.exemplars)
                        }
                    }
                    if h.exemplars
                    else {}
                ),
            }
            for h in registry.histograms()
        ],
    }


def registry_to_json(registry: MetricsRegistry, indent: int = 2) -> str:
    return json.dumps(registry_to_dict(registry), indent=indent, sort_keys=True)


def registry_from_dict(payload: Dict[str, Any]) -> MetricsRegistry:
    """Rebuild a registry from :func:`registry_to_dict` output.

    Histogram running aggregates are only exact when the exported window
    was uncapped (the window then *is* the full history); with a capped
    window the rebuilt stats cover the retained samples, and the exported
    ``count``/``sum`` fields remain the authoritative aggregates.
    """
    registry = MetricsRegistry()
    for entry in payload.get("counters", []):
        registry.counter(entry["name"], **entry["labels"]).set(int(entry["value"]))
    for entry in payload.get("gauges", []):
        registry.gauge(entry["name"], **entry["labels"]).set(float(entry["value"]))
    for entry in payload.get("histograms", []):
        histogram = registry.histogram(entry["name"], **entry["labels"])
        for value in entry["window"]:
            histogram.observe(value)
        exemplars = entry.get("exemplars")
        if exemplars:
            histogram.exemplars = {
                le: (float(ex[0]), str(ex[1]), int(ex[2]))
                for le, ex in exemplars.items()
            }
    return registry


# ----------------------------------------------------------- Prometheus


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: LabelItems, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + extra
    if not items:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in items)
    return "{" + inner + "}"


def _check_name(name: str) -> str:
    if not _NAME_OK.match(name):
        raise ValueError(f"invalid Prometheus metric name: {name!r}")
    return name


def _format_exemplar(exemplar: Tuple[float, str, int]) -> str:
    """OpenMetrics exemplar suffix: `` # {trace_id="..."} value ts``."""
    value, trace_id, observed_at_ns = exemplar
    return (
        f' # {{trace_id="{_escape_label_value(trace_id)}"}} '
        f"{value} {observed_at_ns / 1e9}"
    )


def registry_to_prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (counters, gauges, summaries),
    terminated with the OpenMetrics ``# EOF`` marker."""
    lines: List[str] = []
    typed: set = set()

    def _type_line(name: str, kind: str) -> None:
        # One TYPE comment per metric name, before its first sample.
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        name = _check_name(counter.name)
        _type_line(name, "counter")
        lines.append(f"{name}{_format_labels(counter.labels)} {counter.value}")
    for gauge in registry.gauges():
        name = _check_name(gauge.name)
        _type_line(name, "gauge")
        lines.append(f"{name}{_format_labels(gauge.labels)} {gauge.value}")
    for histogram in registry.histograms():
        name = _check_name(histogram.name)
        labels = histogram.labels
        _type_line(name, "summary")
        lines.append(f"{name}_count{_format_labels(labels)} {histogram.count}")
        lines.append(f"{name}_sum{_format_labels(labels)} {histogram.total}")
        # OpenMetrics exemplars: histograms with an adopted exemplar map
        # expose per-bound cumulative buckets, each annotated with the
        # last traced observation to land in it.  Finite-bucket counts
        # come from the retained window (the raw samples we still hold);
        # the +Inf bucket stays the exact all-time count, which keeps the
        # bucket series monotone (window <= total).
        exemplars = histogram.exemplars
        if exemplars:
            window = list(histogram.series)
            bounds = sorted(
                (float("inf") if le == "+Inf" else float(le), le)
                for le in exemplars
            )
            for bound, le in bounds:
                if le == "+Inf":
                    continue
                bucket_count = sum(1 for v in window if v <= bound)
                bucket_labels = _format_labels(labels, (("le", le),))
                lines.append(
                    f"{name}_bucket{bucket_labels} {bucket_count}"
                    f"{_format_exemplar(exemplars[le])}"
                )
        # Histogram-style cumulative terminal bucket: every observation
        # is <= +Inf, so the bucket equals the count — downstream tools
        # that compute histogram_quantile() get a well-formed series even
        # for an empty histogram (count 0).
        inf_bucket = (("le", "+Inf"),)
        inf_exemplar = (
            _format_exemplar(exemplars["+Inf"])
            if exemplars and "+Inf" in exemplars
            else ""
        )
        lines.append(
            f"{name}_bucket{_format_labels(labels, inf_bucket)} "
            f"{histogram.count}{inf_exemplar}"
        )
        if histogram.minimum is not None:
            lines.append(f"{name}_min{_format_labels(labels)} {histogram.minimum}")
            lines.append(f"{name}_max{_format_labels(labels)} {histogram.maximum}")
        for q, value in zip(_QUANTILES, histogram.quantiles(_QUANTILES)):
            if value is None:
                continue
            quantile = ("quantile", f"{q / 100.0:g}")
            lines.append(f"{name}{_format_labels(labels, (quantile,))} {value}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# Sample lines optionally carry an OpenMetrics exemplar suffix
# (`` # {trace_id="..."} value [timestamp]``); the parser accepts and
# discards it — exemplar-aware consumers read the Tsdb, not this text.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+#\s+\{(?P<exemplar>[^}]*)\}\s+(?P<exemplar_value>\S+)"
    r"(?:\s+(?P<exemplar_ts>\S+))?)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, LabelItems], float]:
    """Parse exposition text back to ``{(name, labels): value}``.

    Enough of the format for round-trip tests: comments are skipped,
    label values are unescaped, every sample line must parse.
    """
    samples: Dict[Tuple[str, LabelItems], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable Prometheus sample line: {line!r}")
        labels: List[Tuple[str, str]] = []
        raw = match.group("labels")
        if raw:
            for key, value in _LABEL_RE.findall(raw):
                # Char-wise unescape: sequential str.replace would corrupt
                # values like ``\now`` (backslash-backslash-n parses as an
                # escaped backslash followed by a literal n, not ``\`` + LF).
                unescaped = re.sub(
                    r"\\(.)",
                    lambda m: "\n" if m.group(1) == "n" else m.group(1),
                    value,
                )
                labels.append((key, unescaped))
        samples[(match.group("name"), tuple(sorted(labels)))] = float(
            match.group("value")
        )
    return samples
