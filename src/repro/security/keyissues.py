"""Table V — 3GPP TR 33.848 Key Issues and the HMEE verdicts.

The paper marks four KIs (6, 7, 15, 25) where 3GPP itself recommends
HMEE, and argues HMEE also fully (✦) or partially (◑) mitigates nine
more.  This module reproduces that table *by execution*: every KI maps to
one or more attacks from :mod:`repro.security.attacks`, which are run
against a plain-container deployment (the attack must succeed — the KI is
real) and against the P-AKA/SGX deployment (the attack must fail — HMEE
mitigates it).  Partial verdicts additionally record the residual
requirements that are out of HMEE's reach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.container.image import ContainerImage, FileEntry, ImageLayer, oai_base_image
from repro.security.attacks import (
    AttackResult,
    AttestationSpoofAttack,
    FunctionTamperAttack,
    ImageSecretExtractionAttack,
    MemoryIntrospectionAttack,
    VirtualKeyStoreAttack,
)
from repro.security.threat import Attacker
from repro.testbed import Testbed


class Mitigation(Enum):
    FULL = "full"  # ✦ in Table V
    PARTIAL = "partial"  # ◑ in Table V


@dataclass(frozen=True)
class KeyIssue:
    """One TR 33.848 key issue with the paper's verdict."""

    number: int
    title: str
    identified_by_3gpp: bool  # ● — 3GPP itself recommends HMEE here
    paper_verdict: Mitigation
    attack: str  # primary attack exercising the KI
    residual: str = ""  # what HMEE does NOT cover (partial verdicts)


KEY_ISSUES: Tuple[KeyIssue, ...] = (
    KeyIssue(2, "Confidentiality of sensitive data", False, Mitigation.FULL,
             attack="memory-introspection"),
    KeyIssue(5, "Data location and lifecycle", False, Mitigation.PARTIAL,
             attack="memory-introspection",
             residual="at-rest encryption and storage-reuse scrubbing on "
                      "non-EPC resources remain operator duties"),
    KeyIssue(6, "Function isolation", True, Mitigation.FULL,
             attack="function-tamper"),
    KeyIssue(7, "Memory introspection", True, Mitigation.FULL,
             attack="memory-introspection"),
    KeyIssue(11, "Where are my keys and confidential data", False, Mitigation.PARTIAL,
             attack="virtual-keystore",
             residual="requires the NF to actually verify key-store "
                      "attestation before use"),
    KeyIssue(12, "Where is my function", False, Mitigation.PARTIAL,
             attack="attestation-spoof",
             residual="deployment orchestration must gate placement on the "
                      "attestation result"),
    KeyIssue(13, "Attestation at 3GPP function level", False, Mitigation.FULL,
             attack="attestation-spoof"),
    KeyIssue(15, "Encrypted data processing", True, Mitigation.FULL,
             attack="memory-introspection"),
    KeyIssue(20, "3rd party hosting environments", False, Mitigation.PARTIAL,
             attack="memory-introspection",
             residual="infrastructure-level SLAs and availability are "
                      "outside the enclave boundary"),
    KeyIssue(21, "VM and hypervisor breakout", False, Mitigation.PARTIAL,
             attack="memory-introspection",
             residual="HMEE cannot prevent the breakout itself, only void "
                      "its payoff"),
    KeyIssue(25, "Container security", True, Mitigation.FULL,
             attack="memory-introspection"),
    KeyIssue(26, "Container breakout", False, Mitigation.PARTIAL,
             attack="memory-introspection",
             residual="breakout still yields host control; non-enclave "
                      "workloads remain exposed"),
    KeyIssue(27, "Secrets in NF container images", False, Mitigation.FULL,
             attack="image-secret-extraction"),
)


@dataclass
class KeyIssueVerdict:
    """Executed verdict for one KI."""

    issue: KeyIssue
    attack_on_container: AttackResult
    attack_on_hmee: AttackResult
    hmee_effective: bool
    matches_paper: bool

    def row(self) -> Dict[str, object]:
        """One Table V row."""
        marker = "●" if self.issue.identified_by_3gpp else " "
        verdict = "✦" if self.issue.paper_verdict is Mitigation.FULL else "◑"
        return {
            "KI": self.issue.number,
            "Description": self.issue.title,
            "3GPP": marker,
            "Solution": verdict,
            "attack_succeeds_on_container": self.attack_on_container.succeeded,
            "attack_succeeds_on_hmee": self.attack_on_hmee.succeeded,
            "hmee_effective": self.hmee_effective,
        }


def _build_attacker(testbed: Testbed, name: str) -> Attacker:
    attacker = Attacker(name=name, host=testbed.host, engine=testbed.engine)
    if not attacker.full_chain():  # pragma: no cover - p(fail) = 0.1^3
        raise RuntimeError("attacker failed to establish the attack chain")
    return attacker


def _credential_image(sealed: bool) -> ContainerImage:
    """A module image carrying TLS client credentials (KI 27 target)."""
    secret = bytes(range(32))
    content = secret if not sealed else bytes(b ^ 0xA5 for b in secret)  # sealed blob
    layer = ImageLayer(
        "credentials",
        files=[FileEntry("/etc/paka/credentials", len(content), content)],
    )
    image, _ = oai_base_image("eudm-aka", bulk_mb=100)
    return image.with_layer(layer)


def _run_attack(name: str, attacker: Attacker, testbed: Testbed) -> AttackResult:
    if name == "memory-introspection":
        return MemoryIntrospectionAttack().run(attacker, testbed)
    if name == "function-tamper":
        return FunctionTamperAttack().run(attacker, testbed)
    if name == "virtual-keystore":
        return VirtualKeyStoreAttack().run(attacker, testbed)
    if name == "attestation-spoof":
        return AttestationSpoofAttack().run(attacker, testbed)
    if name == "image-secret-extraction":
        sealed = testbed.paka is not None and testbed.paka.shielded
        return ImageSecretExtractionAttack().run_against_image(
            _credential_image(sealed=sealed), sealed=sealed
        )
    raise ValueError(f"no attack implementation for {name!r}")


def evaluate_key_issues(
    container_testbed: Testbed,
    hmee_testbed: Testbed,
    registrations: int = 2,
) -> List[KeyIssueVerdict]:
    """Execute the full Table V evaluation.

    ``registrations`` UEs are registered through each deployment first so
    the modules hold live key material worth stealing.
    """
    for testbed in (container_testbed, hmee_testbed):
        for _ in range(registrations):
            ue = testbed.add_subscriber()
            outcome = testbed.register(ue, establish_session=False)
            if not outcome.success:
                raise RuntimeError(
                    f"registration failed during KI setup: {outcome.failure_cause}"
                )

    verdicts: List[KeyIssueVerdict] = []
    for issue in KEY_ISSUES:
        attacker_c = _build_attacker(container_testbed, f"mallory-ki{issue.number}-c")
        attacker_h = _build_attacker(hmee_testbed, f"mallory-ki{issue.number}-h")
        on_container = _run_attack(issue.attack, attacker_c, container_testbed)
        on_hmee = _run_attack(issue.attack, attacker_h, hmee_testbed)
        effective = on_container.succeeded and not on_hmee.succeeded
        verdicts.append(
            KeyIssueVerdict(
                issue=issue,
                attack_on_container=on_container,
                attack_on_hmee=on_hmee,
                hmee_effective=effective,
                matches_paper=effective,  # paper claims HMEE helps on all 13
            )
        )
    return verdicts


def format_table_v(verdicts: List[KeyIssueVerdict]) -> str:
    """Render the verdicts as the paper's Table V."""
    lines = [
        "KI # | 3GPP | Solution | Container attack | HMEE attack | Description",
        "-----+------+----------+------------------+-------------+------------",
    ]
    for verdict in verdicts:
        row = verdict.row()
        lines.append(
            f"{row['KI']:>4} |  {row['3GPP']}   |    {row['Solution']}     |"
            f" {'succeeds' if row['attack_succeeds_on_container'] else 'fails  ':>16} |"
            f" {'succeeds' if row['attack_succeeds_on_hmee'] else 'fails':>11} |"
            f" {row['Description']}"
        )
    return "\n".join(lines)
