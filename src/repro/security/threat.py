"""The attacker of Fig 3.

A malicious third-party application on the shared public-cloud
infrastructure walks the paper's attack chain:

1. **co-residency** — land on the same physical host as the VNO's 5G
   core (prior work reports >90 % success),
2. **escalation** — exploit a container-engine / hypervisor vulnerability
   (the CVEs of §I) to gain host-root / engine privileges,
3. **lateral movement** — with those privileges, inspect and manipulate
   co-resident containers.

Capabilities are explicit: an attack primitive checks that the attacker
has earned the capability it needs, so tests can also assert that an
*unescalated* attacker gets nowhere even against plain containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Set

from repro.container.engine import ContainerEngine
from repro.hw.host import PhysicalHost


class CoResidencyError(Exception):
    """The attacker never landed on the target host."""


class CapabilityError(Exception):
    """An attack primitive was used without the required capability."""


class AttackerCapability(Enum):
    CO_RESIDENT = "co-resident"
    ENGINE_PRIVILEGES = "engine-privileges"  # compromised container engine
    HOST_ROOT = "host-root"  # VM escape / kernel exploit
    NETWORK_TAP = "network-tap"  # on-path on the host bridge


# Vulnerability classes the paper cites (illustrative, not CVE-accurate
# exploit logic — the *effect* is privilege escalation).
ESCALATION_VULNS = {
    "CVE-2022-31705": AttackerCapability.HOST_ROOT,  # VM escape
    "CVE-2022-31696": AttackerCapability.HOST_ROOT,  # memory corruption
    "CVE-2021-31440": AttackerCapability.HOST_ROOT,  # kernel eBPF LPE
    "CVE-2020-14386": AttackerCapability.HOST_ROOT,  # af_packet LPE
    "engine-api-misconfig": AttackerCapability.ENGINE_PRIVILEGES,
}


@dataclass
class Attacker:
    """A third-party application turned adversary."""

    name: str
    host: PhysicalHost
    engine: ContainerEngine
    capabilities: Set[AttackerCapability] = field(default_factory=set)
    log: List[str] = field(default_factory=list)

    # ---------------------------------------------------------- chain steps

    def achieve_coresidency(self, attempts: int = 3) -> bool:
        """Land on the target host (≈90 % per attempt, per [35])."""
        stream = self.host.rng.stream(f"attacker.{self.name}.coresidency")
        for attempt in range(attempts):
            if stream.random() < 0.90:
                self.capabilities.add(AttackerCapability.CO_RESIDENT)
                self.log.append(f"co-residency achieved on attempt {attempt + 1}")
                return True
        self.log.append(f"co-residency failed after {attempts} attempts")
        return False

    def escalate(self, vulnerability: str) -> AttackerCapability:
        """Exploit ``vulnerability`` to cross the virtualization boundary."""
        if AttackerCapability.CO_RESIDENT not in self.capabilities:
            raise CoResidencyError(
                f"{self.name}: cannot exploit host software without co-residency"
            )
        gained = ESCALATION_VULNS.get(vulnerability)
        if gained is None:
            self.log.append(f"exploit {vulnerability!r} failed: not applicable")
            raise CapabilityError(f"unknown/patched vulnerability {vulnerability!r}")
        self.capabilities.add(gained)
        # Host root implies control of everything below it.
        if gained is AttackerCapability.HOST_ROOT:
            self.capabilities.add(AttackerCapability.ENGINE_PRIVILEGES)
            self.capabilities.add(AttackerCapability.NETWORK_TAP)
        self.log.append(f"escalated via {vulnerability}: gained {gained.value}")
        return gained

    def full_chain(self) -> bool:
        """Run the complete Fig 3 chain; returns True when root is held."""
        if not self.achieve_coresidency():
            return False
        self.escalate("CVE-2022-31705")
        return AttackerCapability.HOST_ROOT in self.capabilities

    # ---------------------------------------------------------- primitives

    def require(self, capability: AttackerCapability) -> None:
        if capability not in self.capabilities:
            raise CapabilityError(
                f"{self.name}: attack needs {capability.value!r}; "
                f"has {sorted(c.value for c in self.capabilities)}"
            )

    def introspect_container(self, container_name: str) -> bytes:
        """Read a co-resident container's memory (KI 7's primitive)."""
        self.require(AttackerCapability.ENGINE_PRIVILEGES)
        actor = (
            "host-root"
            if AttackerCapability.HOST_ROOT in self.capabilities
            else "container-engine"
        )
        self.log.append(f"memory introspection of {container_name!r} as {actor}")
        return self.engine.introspect_memory(container_name, actor=actor)

    def tap_bridge(self, network_name: str) -> None:
        """Start capturing frames on the host bridge."""
        self.require(AttackerCapability.NETWORK_TAP)
        self.engine.network(network_name).start_capture()
        self.log.append(f"tapping bridge {network_name!r}")

    def collect_tap(self, network_name: str):
        self.require(AttackerCapability.NETWORK_TAP)
        return self.engine.network(network_name).stop_capture()
