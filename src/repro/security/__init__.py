"""Security evaluation: the threat model of §III and Table V's analysis.

:mod:`repro.security.threat` models the attacker of Fig 3 — a malicious
third-party application that gains co-residency on the shared NFV
infrastructure, exploits the virtualization layer to escalate privileges,
and then moves laterally to inspect or tamper with the 5G-AKA services.

:mod:`repro.security.attacks` are the concrete attack executions; each is
run against both the plain-container deployment (where it must *succeed*)
and the P-AKA/SGX deployment (where it must *fail*) — asserting both
directions is what gives the Table V verdicts their meaning.

:mod:`repro.security.keyissues` is the 3GPP TR 33.848 Key-Issue catalogue
with the paper's HMEE-applicability verdicts, reproduced by execution.
"""

from repro.security.threat import Attacker, AttackerCapability, CoResidencyError
from repro.security.attacks import (
    AttackResult,
    ImageSecretExtractionAttack,
    MemoryIntrospectionAttack,
    AttestationSpoofAttack,
    FunctionTamperAttack,
    NetworkSniffAttack,
    VirtualKeyStoreAttack,
)
from repro.security.keyissues import (
    KEY_ISSUES,
    KeyIssue,
    KeyIssueVerdict,
    Mitigation,
    evaluate_key_issues,
)

__all__ = [
    "Attacker",
    "AttackerCapability",
    "CoResidencyError",
    "AttackResult",
    "MemoryIntrospectionAttack",
    "ImageSecretExtractionAttack",
    "AttestationSpoofAttack",
    "FunctionTamperAttack",
    "NetworkSniffAttack",
    "VirtualKeyStoreAttack",
    "KEY_ISSUES",
    "KeyIssue",
    "KeyIssueVerdict",
    "Mitigation",
    "evaluate_key_issues",
]
