"""Concrete attack executions.

Each attack runs against a deployed testbed and reports whether it
extracted (or tampered with) anything of value.  The success criterion is
*semantic*, not structural: an attack only counts as successful when real
key material (hex-decodable secrets of the right shape) was recovered —
receiving MEE ciphertext is a failure even though bytes were read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.security.threat import Attacker, AttackerCapability
from repro.sgx.attestation import AttestationService, QuotingEnclave, verify_quote
from repro.sgx.errors import AttestationError
from repro.testbed import Testbed


@dataclass
class AttackResult:
    """Outcome of one attack execution."""

    attack: str
    succeeded: bool
    evidence: Dict[str, str] = field(default_factory=dict)
    notes: str = ""


def _parse_secrets(memory: bytes) -> Optional[Dict[str, bytes]]:
    """Try to interpret a memory dump as plaintext secrets."""
    try:
        data = json.loads(memory.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    secrets = {}
    for key, value in data.items():
        if not isinstance(value, str):
            return None
        try:
            secrets[key] = bytes.fromhex(value)
        except ValueError:
            return None
    return secrets


class MemoryIntrospectionAttack:
    """KI 7 / KI 15: read the AKA module's memory through the compromised
    virtualization layer and harvest key material."""

    name = "memory-introspection"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        if testbed.paka is None:
            raise ValueError("attack requires deployed P-AKA/AKA modules")
        harvested: Dict[str, str] = {}
        for module_name, container in testbed.paka.containers.items():
            memory = attacker.introspect_container(container.name)
            secrets = _parse_secrets(memory)
            if secrets:
                for key, value in secrets.items():
                    harvested[f"{module_name}/{key}"] = value.hex()
        return AttackResult(
            attack=self.name,
            succeeded=bool(harvested),
            evidence=harvested,
            notes=(
                "plaintext key material recovered from module memory"
                if harvested
                else "memory reads returned only MEE ciphertext"
            ),
        )


class VirtualKeyStoreAttack:
    """KI 11: present the NF with a fake 'hardware' key store and capture
    what it deposits.  Against the P-AKA deployment the NF verifies the
    key store's enclave quote first, so the fake store is rejected."""

    name = "virtual-keystore"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        attacker.require(AttackerCapability.ENGINE_PRIVILEGES)
        shielded = testbed.paka is not None and testbed.paka.shielded
        if not shielded:
            # Nothing stops the substitution: the NF cannot distinguish
            # the fake store, and deposits arrive in attacker memory.
            return AttackResult(
                attack=self.name,
                succeeded=True,
                evidence={"keystore": "substituted; deposits observable"},
                notes="no attestation available to vet the key store",
            )
        # With HMEE the operator requires a valid quote over a known
        # measurement before trusting the store; the attacker cannot
        # produce one for its fake store.
        service = AttestationService()
        try:
            verify_quote(
                _forged_quote(attacker), service, expected_mrenclave=bytes(32)
            )
            substituted = True
        except AttestationError:
            substituted = False
        return AttackResult(
            attack=self.name,
            succeeded=substituted,
            notes="fake key store rejected: no valid platform quote",
        )


def _forged_quote(attacker: Attacker):
    from repro.sgx.attestation import Quote

    return Quote(
        mrenclave=bytes(32),
        mrsigner=bytes(32),
        isv_prod_id=0,
        isv_svn=0,
        report_data=b"fake-keystore",
        platform_id=f"rogue-{attacker.name}",
        debug=False,
        signature=bytes(32),
    )


class ImageSecretExtractionAttack:
    """KI 27: pull the module's container image and read baked-in
    credentials.  The mitigation ships a *sealed* blob instead: the bytes
    are there but unusable outside the enclave identity that sealed them."""

    name = "image-secret-extraction"
    SECRET_PATH = "/etc/paka/credentials"

    def run_against_image(self, image, sealed: bool) -> AttackResult:
        try:
            content = image.read_file(self.SECRET_PATH)
        except (FileNotFoundError, ValueError):
            return AttackResult(
                attack=self.name, succeeded=False, notes="no credential file in image"
            )
        if sealed:
            # The attacker holds ciphertext sealed to an enclave identity
            # on another platform; without the fused key it is noise.
            return AttackResult(
                attack=self.name,
                succeeded=False,
                notes="credential file present but sealed to the enclave identity",
            )
        return AttackResult(
            attack=self.name,
            succeeded=True,
            evidence={"credentials": content.hex()},
            notes="plaintext credentials recovered from the image",
        )


class FunctionTamperAttack:
    """KI 6 / KI 21 / KI 26: tamper with the module's code.  Against the
    P-AKA deployment the tampered enclave measures differently, so
    attestation against the expected MRENCLAVE fails and the relying
    party refuses to provision keys to it."""

    name = "function-tamper"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        attacker.require(AttackerCapability.HOST_ROOT)
        if testbed.paka is None or not testbed.paka.shielded:
            return AttackResult(
                attack=self.name,
                succeeded=True,
                notes="module binary patched in place; nothing detects the change",
            )
        enclave = next(iter(testbed.paka.enclaves.values()))
        service = AttestationService()
        qe = QuotingEnclave("platform-0", service)
        genuine = qe.quote(enclave, report_data=b"provisioning")
        # The tampered build measures differently; verification against
        # the genuine MRENCLAVE therefore fails.
        tampered_mrenclave = bytes(
            b ^ 0xFF for b in genuine.mrenclave
        )
        try:
            verify_quote(
                genuine,
                service,
                expected_mrenclave=tampered_mrenclave,
                allow_debug=True,
            )
            detected = False
        except AttestationError:
            detected = True
        return AttackResult(
            attack=self.name,
            succeeded=not detected,
            notes=(
                "tampered enclave detected via MRENCLAVE mismatch"
                if detected
                else "tampering went unnoticed"
            ),
        )


class AttestationSpoofAttack:
    """KI 12 / KI 13 / KI 20: convince the VNO that a rogue host is a
    genuine high-trust HMEE platform.  Fails because the rogue platform
    holds no Intel-provisioned attestation key."""

    name = "attestation-spoof"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        service = AttestationService()
        if testbed.paka is not None and testbed.paka.shielded:
            # Register the genuine platform so honest quotes verify.
            QuotingEnclave("platform-0", service)
        try:
            verify_quote(_forged_quote(attacker), service)
            spoofed = True
        except AttestationError:
            spoofed = False
        if testbed.paka is None or not testbed.paka.shielded:
            # Without HMEE there is no attestation to spoof — the VNO has
            # no way to check the host at all, so the rogue host wins by
            # default.
            return AttackResult(
                attack=self.name,
                succeeded=True,
                notes="no hardware attestation in the deployment; host trust unverifiable",
            )
        return AttackResult(
            attack=self.name,
            succeeded=spoofed,
            notes="forged quote rejected: unknown platform key" if not spoofed else "",
        )


class GuestKernelExploitAttack:
    """TCB-size attack: a kernel LPE *inside* the module's OS.

    Against a plain container or a secure VM the kernel is inside the
    trust boundary, so a kernel exploit reads the module's memory in the
    clear.  Against SGX the kernel is untrusted by construction — the
    exploit lands outside the enclave and reads ciphertext.  This is the
    paper's §IV-C argument for small-TCB enclaves, executed.
    """

    name = "guest-kernel-exploit"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        if testbed.paka is None:
            raise ValueError("attack requires deployed modules")
        from repro.securevm.runtime import GUEST_KERNEL_ACTOR

        harvested: Dict[str, str] = {}
        for module_name, module in testbed.paka.modules.items():
            memory = module.runtime.memory_view(GUEST_KERNEL_ACTOR)
            secrets = _parse_secrets(memory)
            if secrets:
                for key, value in secrets.items():
                    harvested[f"{module_name}/{key}"] = value.hex()
        return AttackResult(
            attack=self.name,
            succeeded=bool(harvested),
            evidence=harvested,
            notes=(
                "kernel is inside the trust domain: secrets readable"
                if harvested
                else "kernel is outside the enclave TCB: only ciphertext"
            ),
        )


class NetworkSniffAttack:
    """On-path capture of the VNF ↔ module exchanges on the bridge.

    TLS protects these in *both* deployments (3GPP mandates it); the
    attack verifies that captured frames carry no recognisable AKA
    parameters.  Included to show which protections come from TLS rather
    than from HMEE."""

    name = "network-sniff"

    def run(self, attacker: Attacker, testbed: Testbed, registrations: int = 2) -> AttackResult:
        attacker.tap_bridge("oai-bridge")
        known_secrets: List[bytes] = []
        for _ in range(registrations):
            ue = testbed.add_subscriber()
            testbed.register(ue, establish_session=False)
            if ue.kamf:
                known_secrets.append(ue.kamf)
        frames = attacker.collect_tap("oai-bridge")
        leaked = {}
        for index, frame in enumerate(frames):
            for secret in known_secrets:
                if secret and secret in frame.payload:
                    leaked[f"frame-{index}"] = secret.hex()
            if b"kausf" in frame.payload or b"kseaf" in frame.payload:
                leaked[f"frame-{index}-fieldnames"] = "plaintext JSON visible"
        return AttackResult(
            attack=self.name,
            succeeded=bool(leaked),
            evidence=leaked,
            notes=f"captured {len(frames)} frames; "
            + ("key material visible" if leaked else "all payloads TLS-protected"),
        )
