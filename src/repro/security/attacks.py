"""Concrete attack executions.

Each attack runs against a deployed testbed and reports whether it
extracted (or tampered with) anything of value.  The success criterion is
*semantic*, not structural: an attack only counts as successful when real
key material (hex-decodable secrets of the right shape) was recovered —
receiving MEE ciphertext is a failure even though bytes were read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.security.threat import Attacker, AttackerCapability
from repro.sgx.attestation import AttestationService, QuotingEnclave, verify_quote
from repro.sgx.errors import AttestationError
from repro.testbed import Testbed


@dataclass
class AttackResult:
    """Outcome of one attack execution."""

    attack: str
    succeeded: bool
    evidence: Dict[str, str] = field(default_factory=dict)
    notes: str = ""


def _parse_secrets(memory: bytes) -> Optional[Dict[str, bytes]]:
    """Try to interpret a memory dump as plaintext secrets."""
    try:
        data = json.loads(memory.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    secrets = {}
    for key, value in data.items():
        if not isinstance(value, str):
            return None
        try:
            secrets[key] = bytes.fromhex(value)
        except ValueError:
            return None
    return secrets


class MemoryIntrospectionAttack:
    """KI 7 / KI 15: read the AKA module's memory through the compromised
    virtualization layer and harvest key material."""

    name = "memory-introspection"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        if testbed.paka is None:
            raise ValueError("attack requires deployed P-AKA/AKA modules")
        harvested: Dict[str, str] = {}
        for module_name, container in testbed.paka.containers.items():
            memory = attacker.introspect_container(container.name)
            secrets = _parse_secrets(memory)
            if secrets:
                for key, value in secrets.items():
                    harvested[f"{module_name}/{key}"] = value.hex()
        return AttackResult(
            attack=self.name,
            succeeded=bool(harvested),
            evidence=harvested,
            notes=(
                "plaintext key material recovered from module memory"
                if harvested
                else "memory reads returned only MEE ciphertext"
            ),
        )


class VirtualKeyStoreAttack:
    """KI 11: present the NF with a fake 'hardware' key store and capture
    what it deposits.  Against the P-AKA deployment the NF verifies the
    key store's enclave quote first, so the fake store is rejected."""

    name = "virtual-keystore"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        attacker.require(AttackerCapability.ENGINE_PRIVILEGES)
        shielded = testbed.paka is not None and testbed.paka.shielded
        if not shielded:
            # Nothing stops the substitution: the NF cannot distinguish
            # the fake store, and deposits arrive in attacker memory.
            return AttackResult(
                attack=self.name,
                succeeded=True,
                evidence={"keystore": "substituted; deposits observable"},
                notes="no attestation available to vet the key store",
            )
        # With HMEE the operator requires a valid quote over a known
        # measurement before trusting the store; the attacker cannot
        # produce one for its fake store.
        service = AttestationService()
        try:
            verify_quote(
                _forged_quote(attacker), service, expected_mrenclave=bytes(32)
            )
            substituted = True
        except AttestationError:
            substituted = False
        return AttackResult(
            attack=self.name,
            succeeded=substituted,
            notes="fake key store rejected: no valid platform quote",
        )


def _forged_quote(attacker: Attacker):
    from repro.sgx.attestation import Quote

    return Quote(
        mrenclave=bytes(32),
        mrsigner=bytes(32),
        isv_prod_id=0,
        isv_svn=0,
        report_data=b"fake-keystore",
        platform_id=f"rogue-{attacker.name}",
        debug=False,
        signature=bytes(32),
    )


class ImageSecretExtractionAttack:
    """KI 27: pull the module's container image and read baked-in
    credentials.  The mitigation ships a *sealed* blob instead: the bytes
    are there but unusable outside the enclave identity that sealed them."""

    name = "image-secret-extraction"
    SECRET_PATH = "/etc/paka/credentials"

    def run_against_image(self, image, sealed: bool) -> AttackResult:
        try:
            content = image.read_file(self.SECRET_PATH)
        except (FileNotFoundError, ValueError):
            return AttackResult(
                attack=self.name, succeeded=False, notes="no credential file in image"
            )
        if sealed:
            # The attacker holds ciphertext sealed to an enclave identity
            # on another platform; without the fused key it is noise.
            return AttackResult(
                attack=self.name,
                succeeded=False,
                notes="credential file present but sealed to the enclave identity",
            )
        return AttackResult(
            attack=self.name,
            succeeded=True,
            evidence={"credentials": content.hex()},
            notes="plaintext credentials recovered from the image",
        )


class FunctionTamperAttack:
    """KI 6 / KI 21 / KI 26: tamper with the module's code.  Against the
    P-AKA deployment the tampered enclave measures differently, so
    attestation against the expected MRENCLAVE fails and the relying
    party refuses to provision keys to it."""

    name = "function-tamper"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        attacker.require(AttackerCapability.HOST_ROOT)
        if testbed.paka is None or not testbed.paka.shielded:
            return AttackResult(
                attack=self.name,
                succeeded=True,
                notes="module binary patched in place; nothing detects the change",
            )
        enclave = next(iter(testbed.paka.enclaves.values()))
        service = AttestationService()
        qe = QuotingEnclave("platform-0", service)
        genuine = qe.quote(enclave, report_data=b"provisioning")
        # The tampered build measures differently; verification against
        # the genuine MRENCLAVE therefore fails.
        tampered_mrenclave = bytes(
            b ^ 0xFF for b in genuine.mrenclave
        )
        try:
            verify_quote(
                genuine,
                service,
                expected_mrenclave=tampered_mrenclave,
                allow_debug=True,
            )
            detected = False
        except AttestationError:
            detected = True
        return AttackResult(
            attack=self.name,
            succeeded=not detected,
            notes=(
                "tampered enclave detected via MRENCLAVE mismatch"
                if detected
                else "tampering went unnoticed"
            ),
        )


class AttestationSpoofAttack:
    """KI 12 / KI 13 / KI 20: convince the VNO that a rogue host is a
    genuine high-trust HMEE platform.  Fails because the rogue platform
    holds no Intel-provisioned attestation key."""

    name = "attestation-spoof"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        service = AttestationService()
        if testbed.paka is not None and testbed.paka.shielded:
            # Register the genuine platform so honest quotes verify.
            QuotingEnclave("platform-0", service)
        try:
            verify_quote(_forged_quote(attacker), service)
            spoofed = True
        except AttestationError:
            spoofed = False
        if testbed.paka is None or not testbed.paka.shielded:
            # Without HMEE there is no attestation to spoof — the VNO has
            # no way to check the host at all, so the rogue host wins by
            # default.
            return AttackResult(
                attack=self.name,
                succeeded=True,
                notes="no hardware attestation in the deployment; host trust unverifiable",
            )
        return AttackResult(
            attack=self.name,
            succeeded=spoofed,
            notes="forged quote rejected: unknown platform key" if not spoofed else "",
        )


class GuestKernelExploitAttack:
    """TCB-size attack: a kernel LPE *inside* the module's OS.

    Against a plain container or a secure VM the kernel is inside the
    trust boundary, so a kernel exploit reads the module's memory in the
    clear.  Against SGX the kernel is untrusted by construction — the
    exploit lands outside the enclave and reads ciphertext.  This is the
    paper's §IV-C argument for small-TCB enclaves, executed.
    """

    name = "guest-kernel-exploit"

    def run(self, attacker: Attacker, testbed: Testbed) -> AttackResult:
        if testbed.paka is None:
            raise ValueError("attack requires deployed modules")
        from repro.securevm.runtime import GUEST_KERNEL_ACTOR

        harvested: Dict[str, str] = {}
        for module_name, module in testbed.paka.modules.items():
            memory = module.runtime.memory_view(GUEST_KERNEL_ACTOR)
            secrets = _parse_secrets(memory)
            if secrets:
                for key, value in secrets.items():
                    harvested[f"{module_name}/{key}"] = value.hex()
        return AttackResult(
            attack=self.name,
            succeeded=bool(harvested),
            evidence=harvested,
            notes=(
                "kernel is inside the trust domain: secrets readable"
                if harvested
                else "kernel is outside the enclave TCB: only ciphertext"
            ),
        )


class NetworkSniffAttack:
    """On-path capture of the VNF ↔ module exchanges on the bridge.

    TLS protects these in *both* deployments (3GPP mandates it); the
    attack verifies that captured frames carry no recognisable AKA
    parameters.  Included to show which protections come from TLS rather
    than from HMEE."""

    name = "network-sniff"

    def run(self, attacker: Attacker, testbed: Testbed, registrations: int = 2) -> AttackResult:
        attacker.tap_bridge("oai-bridge")
        known_secrets: List[bytes] = []
        for _ in range(registrations):
            ue = testbed.add_subscriber()
            testbed.register(ue, establish_session=False)
            if ue.kamf:
                known_secrets.append(ue.kamf)
        frames = attacker.collect_tap("oai-bridge")
        leaked = {}
        for index, frame in enumerate(frames):
            for secret in known_secrets:
                if secret and secret in frame.payload:
                    leaked[f"frame-{index}"] = secret.hex()
            if b"kausf" in frame.payload or b"kseaf" in frame.payload:
                leaked[f"frame-{index}-fieldnames"] = "plaintext JSON visible"
        return AttackResult(
            attack=self.name,
            succeeded=bool(leaked),
            evidence=leaked,
            notes=f"captured {len(frames)} frames; "
            + ("key material visible" if leaked else "all payloads TLS-protected"),
        )


# --------------------------------------------------------------------------
# Adversarial signaling traffic (ROADMAP item 4).
#
# Everything below models *hostile load* rather than key extraction: seeded
# deterministic signaling storms aimed at the AMF's NAS front door and the
# enclave-backed authentication path behind it.  The storm schedule is a
# pure value of (seed, rate, horizon, profile) drawn from a private
# ``random.Random`` — the testbed's namespaced RNG streams are never
# touched by schedule generation, and the attack UE population provisions
# through dedicated ``9…``/``8…`` MSIN prefixes whose streams are disjoint
# from every legitimate subscriber's.  A testbed with no AttackPlane
# attached executes zero attack code: golden clocks hold byte-for-byte.
# --------------------------------------------------------------------------

from enum import Enum
from random import Random
from typing import Tuple

from repro.fivegc.amf import AmfError
from repro.fivegc.messages import (
    AuthenticationFailure,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    RegistrationRequest,
    SecurityModeComplete,
)

NS_PER_S = 1_000_000_000


class StormKind(Enum):
    """The four adversarial signaling workloads."""

    SUCI_REPLAY = "suci-replay"  # captured SUCI replayed from spoofed ids
    AUTS_RESYNC = "auts-resync"  # forged-AUTS synchronization-failure storm
    NAS_FUZZ = "nas-fuzz"  # malformed NAS from a seeded RNG stream
    BOTNET_REGISTER = "botnet-register"  # valid registrations, hostile volume


#: Default traffic mix for a blended storm (weights need not sum to 1).
DEFAULT_STORM_MIX: Dict[StormKind, float] = {
    StormKind.SUCI_REPLAY: 0.35,
    StormKind.AUTS_RESYNC: 0.2,
    StormKind.NAS_FUZZ: 0.2,
    StormKind.BOTNET_REGISTER: 0.25,
}


@dataclass(frozen=True)
class StormProfile:
    """Shape of one storm: traffic mix and source-population sizes."""

    mix: Tuple[Tuple[StormKind, float], ...] = tuple(
        sorted(DEFAULT_STORM_MIX.items(), key=lambda kv: kv[0].value)
    )
    spoof_pool: int = 64  # distinct spoofed identities replaying captures
    attack_gnbs: int = 4  # hostile cells the traffic enters through
    botnet_population: int = 32  # provisioned bots, cycled round-robin


@dataclass(frozen=True)
class AttackEvent:
    """One scheduled hostile arrival (``at_ns`` relative to storm start)."""

    at_ns: int
    kind: StormKind
    gnb: str
    source: str
    salt: int  # per-event seed for fuzz payload draws


def generate_storm(
    seed: int,
    horizon_s: float,
    rate_per_s: float,
    profile: Optional[StormProfile] = None,
) -> Tuple[AttackEvent, ...]:
    """Poisson storm schedule: a pure value of its arguments.

    Drawn from a private ``random.Random`` (the FaultPlan idiom), so
    generating a schedule perturbs no testbed RNG stream; the same
    arguments always yield byte-identical events.
    """
    profile = profile or StormProfile()
    if rate_per_s <= 0:
        return ()
    rng = Random(f"storm:{seed}:{horizon_s}:{rate_per_s}")
    horizon_ns = int(horizon_s * NS_PER_S)
    kinds = [kind for kind, _ in profile.mix]
    weights = [weight for _, weight in profile.mix]
    total_weight = sum(weights)
    events = []
    t_ns = 0
    bot_cursor = 0
    while True:
        t_ns += int(rng.expovariate(rate_per_s) * NS_PER_S)
        if t_ns >= horizon_ns:
            break
        pick = rng.random() * total_weight
        kind = kinds[-1]
        for candidate, weight in zip(kinds, weights):
            if pick < weight:
                kind = candidate
                break
            pick -= weight
        gnb = f"gnb-atk-{rng.randrange(profile.attack_gnbs)}"
        if kind is StormKind.BOTNET_REGISTER:
            source = f"bot-{bot_cursor % profile.botnet_population}"
            bot_cursor += 1
        else:
            source = f"spoof-{rng.randrange(profile.spoof_pool)}"
        events.append(
            AttackEvent(
                at_ns=t_ns,
                kind=kind,
                gnb=gnb,
                source=source,
                salt=rng.getrandbits(32),
            )
        )
    return tuple(events)


#: MSIN prefixes reserved for the attack plane.  Disjoint from the
#: sequential ``0000000001…`` numbering of legitimate subscribers, so
#: provisioning attack UEs draws only from ``sub.9…``/``sub.8…`` RNG
#: streams and never perturbs a legitimate draw.
VICTIM_MSIN = "9000000001"
BOTNET_MSIN_PREFIX = "8"

_N2_LATENCY_US = 140.0
_MAX_NAS_ROUNDS = 12


class AttackPlane:
    """Executes storm events against a testbed's AMF over N2.

    Hostile traffic enters at the N2 interface from dedicated attack
    gNB identities (``gnb-atk-*``): the botnet burns *its own* cells'
    radio resources, so only core-side costs (N2 transport + AMF/SBI/
    enclave work) land on the shared simulated clock.  All randomness
    comes from attack-only namespaced streams (``atk.*``) or per-event
    private ``Random`` instances — a disarmed testbed's draws are
    untouched.
    """

    def __init__(
        self,
        testbed: Testbed,
        profile: Optional[StormProfile] = None,
    ) -> None:
        self.testbed = testbed
        self.profile = profile or StormProfile()
        self.amf = testbed.amf
        self.host = testbed.host
        # Captured over-the-air SUCI of an attacker-observed victim: one
        # valid concealed identity, replayed verbatim from spoofed ids.
        victim = testbed.add_subscriber(msin=VICTIM_MSIN)
        self.captured_suci_request = victim.build_registration_request()
        # Botnet population: real provisioned subscribers under attacker
        # control (volume is the weapon, not malformed content).
        self.botnet = [
            testbed.add_subscriber(msin=f"{BOTNET_MSIN_PREFIX}{i:09d}")
            for i in range(self.profile.botnet_population)
        ]
        self.events_executed = 0
        # outcome in {"pending", "completed", "rejected", "shed", "errored"}
        self.outcomes: Dict[str, Dict[str, int]] = {
            kind.value: {} for kind in StormKind
        }

    # ------------------------------------------------------------ plumbing

    def _n2(self, gnb: str) -> None:
        self.host.clock.advance_us(
            self.host.rng.jitter(f"atk.{gnb}.n2", _N2_LATENCY_US, 0.05)
        )

    def _count(self, kind: StormKind, outcome: str) -> None:
        bucket = self.outcomes[kind.value]
        bucket[outcome] = bucket.get(outcome, 0) + 1

    def _send(self, ue_id: str, message, gnb: str):
        """One NAS round over N2; AmfError (malformed/out-of-order NAS
        the AMF refuses to process) surfaces as ``None``."""
        self._n2(gnb)
        try:
            reply = self.amf.handle_nas(ue_id, message, via=gnb)
        except AmfError:
            reply = None
        self._n2(gnb)
        return reply

    @staticmethod
    def _is_shed(reply) -> bool:
        return isinstance(reply, AuthenticationReject) and reply.cause.startswith(
            "congestion:"
        )

    # ------------------------------------------------------------- execute

    def execute(self, event: AttackEvent) -> str:
        """Run one storm event; returns the outcome label."""
        handler = {
            StormKind.SUCI_REPLAY: self._run_suci_replay,
            StormKind.AUTS_RESYNC: self._run_auts_resync,
            StormKind.NAS_FUZZ: self._run_nas_fuzz,
            StormKind.BOTNET_REGISTER: self._run_botnet_register,
        }[event.kind]
        # Storm events enter at the AMF directly (no gNB registration
        # root), so under an armed campaign tracer their SBI spans would
        # pile up as orphan roots for the whole horizon.  Wrap each event
        # in a throwaway root and recycle it: bounded memory, no clock
        # reads beyond the span boundaries, untraced runs untouched.
        tracer = self.host.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        atk_root = (
            tracer.begin(event.kind.value, kind="attack", gnb=event.gnb)
            if tracer is not None else None
        )
        try:
            outcome = handler(event)
        finally:
            if atk_root is not None:
                tracer.end(atk_root)
                tracer.recycle(atk_root)
        self.events_executed += 1
        self._count(event.kind, outcome)
        monitor = self.host.monitor
        if monitor is not None:
            monitor.tick()
        return outcome

    def _run_suci_replay(self, event: AttackEvent) -> str:
        """Replay the captured SUCI: every accepted replay burns a full
        authentication-vector generation in the eUDM enclave."""
        reply = self._send(event.source, self.captured_suci_request, event.gnb)
        if isinstance(reply, AuthenticationRequest):
            return "pending"  # challenge ignored; session left dangling
        if self._is_shed(reply):
            return "shed"
        return "rejected" if reply is not None else "errored"

    def _run_auts_resync(self, event: AttackEvent) -> str:
        """Forged-AUTS storm: answer the challenge with SYNCH_FAILURE and
        attacker-chosen AUTS, forcing the home network through the
        TS 33.102 §6.3.5 resync path (AUTS verification in the eUDM)."""
        reply = self._send(event.source, self.captured_suci_request, event.gnb)
        if self._is_shed(reply):
            return "shed"
        if not isinstance(reply, AuthenticationRequest):
            return "rejected" if reply is not None else "errored"
        forged_auts = Random(f"storm:auts:{event.salt}").randbytes(14)
        reply = self._send(
            event.source,
            AuthenticationFailure(cause="SYNCH_FAILURE", auts=forged_auts),
            event.gnb,
        )
        # The eUDM's MAC-S check fails, so the AMF rejects — but the
        # resync round-trip (and its enclave entries) was already spent.
        return "rejected" if reply is not None else "errored"

    def _run_nas_fuzz(self, event: AttackEvent) -> str:
        """Malformed-NAS fuzzing from a seeded RNG stream."""
        rng = Random(f"storm:fuzz:{event.salt}")
        variant = rng.randrange(6)
        if variant == 0:  # truncated/garbled scheme output (valid hex)
            message = RegistrationRequest(
                suci={
                    "mcc": "001",
                    "mnc": "01",
                    "scheme": 1,
                    "keyId": 1,
                    "schemeOutput": rng.randbytes(rng.randrange(1, 40)).hex(),
                }
            )
        elif variant == 1:  # non-hex scheme output
            message = RegistrationRequest(
                suci={
                    "mcc": "001",
                    "mnc": "01",
                    "scheme": 1,
                    "keyId": 1,
                    "schemeOutput": "zz-not-hex-" + str(rng.randrange(10**6)),
                }
            )
        elif variant == 2:  # structurally broken SUCI object
            message = RegistrationRequest(suci={"mcc": "001"})
        elif variant == 3:  # unknown temporary identity
            message = RegistrationRequest(
                guti=f"5g-guti-00101-{rng.randrange(16**8):08x}-deadbeef"
            )
        elif variant == 4:  # out-of-context challenge response
            message = AuthenticationResponse(res_star=rng.randbytes(16))
        else:  # out-of-context security-mode complete
            message = SecurityModeComplete(mac=rng.randbytes(4))
        reply = self._send(event.source, message, event.gnb)
        if self._is_shed(reply):
            return "shed"
        return "rejected" if reply is not None else "errored"

    def _run_botnet_register(self, event: AttackEvent) -> str:
        """One full (valid!) registration from the botnet population —
        the DDoS weapon is volume through the enclave path, not content."""
        bot = self.botnet[int(event.source.split("-")[1])]
        uplink = bot.build_registration_request()
        rounds = 0
        while uplink is not None and rounds < _MAX_NAS_ROUNDS:
            downlink = self._send(bot.name, uplink, event.gnb)
            rounds += 1
            if downlink is None:
                return "errored"
            if isinstance(downlink, AuthenticationReject):
                return "shed" if self._is_shed(downlink) else "rejected"
            uplink = bot.handle_nas(downlink)
        return "completed" if bot.registered else "rejected"

    # ------------------------------------------------------------- metrics

    def collect_metrics(self, registry) -> None:
        registry.counter("attack_events_total").set(self.events_executed)
        for kind, outcomes in sorted(self.outcomes.items()):
            for outcome, count in sorted(outcomes.items()):
                registry.counter(
                    "attack_outcomes_total", kind=kind, outcome=outcome
                ).set(count)

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-kind outcome counts (stable key order for reports)."""
        return {
            kind: dict(sorted(outcomes.items()))
            for kind, outcomes in sorted(self.outcomes.items())
            if outcomes
        }
