"""Service-Based Interface conventions (3GPP TS 29.5xx family).

Names the services and API paths the VNFs expose to each other, plus the
NF profile structure the NRF stores for discovery.  Paths follow the
3GPP naming style (``nausf-auth``, ``nudm-ueau`` …); the P-AKA module
paths are this reproduction's equivalent of the paper's "REST API
endpoints where each AKA function is mapped to an endpoint handler".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List


class NFType(Enum):
    NRF = "NRF"
    UDR = "UDR"
    UDM = "UDM"
    AUSF = "AUSF"
    AMF = "AMF"
    SMF = "SMF"
    UPF = "UPF"


# Core SBI API paths.
NRF_REGISTER = "/nnrf-nfm/v1/nf-instances"
NF_HEALTH = "/nnrf-nfm/v1/nf-health"  # liveness probe, served by every NF
NRF_DISCOVER = "/nnrf-disc/v1/nf-instances"
UDR_AUTH_SUBSCRIPTION = "/nudr-dr/v1/subscription-data/authentication-data"
UDR_AUTH_PEEK = "/nudr-dr/v1/subscription-data/authentication-data/peek"
UDR_AUTH_RESYNC = "/nudr-dr/v1/subscription-data/authentication-data/resync"
UDM_UE_AUTH_GET = "/nudm-ueau/v1/generate-auth-data"
AUSF_UE_AUTH = "/nausf-auth/v1/ue-authentications"
AUSF_UE_AUTH_CONFIRM = "/nausf-auth/v1/ue-authentications/confirmation"
AMF_N1_MESSAGE = "/namf-comm/v1/n1-message"
SMF_PDU_SESSION = "/nsmf-pdusession/v1/sm-contexts"

# P-AKA module endpoints (one per offloaded function group, Table I).
EUDM_PROVISION = "/eudm-paka/v1/provision"
EUDM_GENERATE_AV = "/eudm-paka/v1/generate-av"
EUDM_VERIFY_AUTS = "/eudm-paka/v1/verify-auts"
EAUSF_DERIVE_SE_AV = "/eausf-paka/v1/derive-se-av"
EAMF_DERIVE_KAMF = "/eamf-paka/v1/derive-kamf"


@dataclass
class NFProfile:
    """What an NF registers with the NRF."""

    nf_instance_id: str
    nf_type: NFType
    endpoint_name: str  # bridge endpoint (the "address")
    services: List[str] = field(default_factory=list)
    metadata: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "nfInstanceId": self.nf_instance_id,
            "nfType": self.nf_type.value,
            "endpoint": self.endpoint_name,
            "services": list(self.services),
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NFProfile":
        return cls(
            nf_instance_id=str(data["nfInstanceId"]),
            nf_type=NFType(str(data["nfType"])),
            endpoint_name=str(data["endpoint"]),
            services=[str(s) for s in data.get("services", [])],
            metadata={str(k): str(v) for k, v in dict(data.get("metadata", {})).items()},
        )
