"""HTTP/1.1 over TLS over the simulated bridge.

The server is modelled on Pistache's epoll reactor: each request is
surrounded by a configurable *syscall profile* — the sequence of host
syscalls the server issues while accepting, polling, reading and writing.
Under the native runtime each is a cheap trap; under Gramine each is an
OCALL, which is precisely how the paper's SGX overheads arise (§V-B3:
"network I/O operations … trigger OCALLs and ECALLs", "the Pistache HTTP
server uses epoll_wait system calls to monitor sockets").

Latency instrumentation follows the paper's definitions:

* ``L_F`` (functional latency) — measured by the handler around the AKA
  function execution (:meth:`HandlerContext.functional`),
* ``L_T`` (total latency) — measured by the server from request received
  to response sent, so ``L_T = L_F + L_N``,
* ``R`` (response time) — measured by the client around the full exchange.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.container.network import BridgeNetwork, FrameLost, NetworkError
from repro.crypto.tls import TlsCostModel, TlsSession, establish_session
from repro.runtime.base import Runtime
from repro.sim.clock import TimeSpan
from repro.sim.metrics import BoundedSeries
from repro.sim.rng import RngService

Handler = Callable[["HttpRequest", "HandlerContext"], "HttpResponse"]

# One syscall profile entry: (name, bytes_out, bytes_in).
SyscallSpec = Tuple[str, int, int]


class HttpError(Exception):
    """Protocol-level failure (no route, bad payload, closed connection)."""


class UnresponsiveError(HttpError):
    """The peer accepted the frame but will never answer (crash window).

    Raised by a server's ``fault_gate``; the client converts it into a
    :class:`RequestTimeout` after waiting out its response deadline.
    """


class RequestTimeout(HttpError):
    """The client's per-attempt response deadline expired."""


@dataclass(frozen=True)
class RetryPolicy:
    """SBI client retry behaviour: per-attempt deadline + capped
    exponential backoff with multiplicative jitter.

    Backoff jitter draws from the client's own ``retry.<name>`` RNG
    stream, and only when a retry actually happens — fault-free runs
    never touch the stream, keeping golden clocks bit-identical.
    """

    max_attempts: int = 3
    timeout_us: float = 2_000_000.0  # per-attempt response deadline
    base_backoff_us: float = 50_000.0
    backoff_multiplier: float = 2.0
    max_backoff_us: float = 1_600_000.0
    jitter: float = 0.10

    def backoff_us(
        self, retry_index: int, rng: Optional[RngService] = None, stream: str = ""
    ) -> float:
        """Backoff before retry number ``retry_index`` (1-based)."""
        base = min(
            self.base_backoff_us * self.backoff_multiplier ** (retry_index - 1),
            self.max_backoff_us,
        )
        if rng is None or self.jitter <= 0:
            return base
        return rng.jitter(stream, base, self.jitter)


#: Default SBI policy for NF-to-NF calls (attached by NetworkFunction).
DEFAULT_SBI_RETRY = RetryPolicy()


# Serialized head-section cache: SBI traffic reuses a handful of
# (method, path, headers) / (status, headers) shapes for the whole
# campaign, so the f-string/sort/encode work happens once per shape.
_HEAD_CACHE: Dict[tuple, bytes] = {}


def _request_head(method: str, path: str, header_items: tuple) -> bytes:
    key = (method, path, header_items)
    head = _HEAD_CACHE.get(key)
    if head is None:
        if len(_HEAD_CACHE) > 8192:  # unique-header traffic cannot leak memory
            _HEAD_CACHE.clear()
        header_lines = "".join(f"{k}: {v}\r\n" for k, v in sorted(header_items))
        head = _HEAD_CACHE[key] = (
            f"{method} {path} HTTP/1.1\r\n{header_lines}\r\n".encode()
        )
    return head


def _response_head(status: int, header_items: tuple) -> bytes:
    key = (status, header_items)
    head = _HEAD_CACHE.get(key)
    if head is None:
        header_lines = "".join(f"{k}: {v}\r\n" for k, v in sorted(header_items))
        head = _HEAD_CACHE[key] = (
            f"HTTP/1.1 {status} X\r\n{header_lines}\r\n".encode()
        )
    return head


@dataclass
class HttpRequest:
    method: str
    path: str
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    def wire_bytes(self) -> bytes:
        head = _request_head(self.method, self.path, tuple(self.headers.items()))
        return head + self.body

    @classmethod
    def from_wire(cls, raw: bytes) -> "HttpRequest":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        method, path, _ = lines[0].split(" ", 2)
        headers = {}
        for line in lines[1:]:
            if ": " in line:
                key, value = line.split(": ", 1)
                headers[key] = value
        return cls(method=method, path=path, body=body, headers=headers)


@dataclass
class HttpResponse:
    status: int
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    def json(self) -> dict:
        return json.loads(self.body.decode())

    def wire_bytes(self) -> bytes:
        head = _response_head(self.status, tuple(self.headers.items()))
        return head + self.body

    @classmethod
    def from_wire(cls, raw: bytes) -> "HttpResponse":
        head, _, body = raw.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        status = int(lines[0].split(" ")[1])
        headers = {}
        for line in lines[1:]:
            if ": " in line:
                key, value = line.split(": ", 1)
                headers[key] = value
        return cls(status=status, body=body, headers=headers)


@dataclass(frozen=True)
class ServerSyscallProfile:
    """The server's syscall footprint around one request.

    ``in_window_*`` syscalls fall inside the L_T measurement window
    (between request-received and response-sent); ``out_of_window``
    models the reactor chatter around it (epoll re-arms, timer fds,
    eventfd wakeups, futexes) that still costs OCALLs per request and
    therefore lands in the client-observed response time R and in the
    per-registration EENTER/EEXIT deltas of Table III.
    """

    in_window_pre: List[SyscallSpec]
    in_window_post: List[SyscallSpec]
    out_of_window: List[SyscallSpec]
    connection_setup: List[SyscallSpec]
    # Application-level parse/serialize compute, cycles per byte + fixed.
    parse_fixed_cycles: float = 9_000
    parse_per_byte_cycles: float = 14.0

    @staticmethod
    def pistache_like(reactor_chatter: int = 80) -> "ServerSyscallProfile":
        """The default Pistache-style profile used by the P-AKA modules.

        ``reactor_chatter`` scales the out-of-window reactor noise; the
        calibrated default lands each request at ≈90 syscalls total, the
        per-registration transition count the paper reports.
        """
        background: List[SyscallSpec] = []
        rotation = [
            ("epoll_wait", 0, 0),
            ("clock_gettime", 0, 0),
            ("futex", 0, 0),
            ("read", 0, 8),        # timerfd
            ("write", 8, 0),       # eventfd wakeup
            ("epoll_ctl", 0, 0),
            ("clock_gettime", 0, 0),
            ("sched_yield", 0, 0),
        ]
        for i in range(reactor_chatter):
            background.append(rotation[i % len(rotation)])
        return ServerSyscallProfile(
            in_window_pre=[
                ("epoll_wait", 0, 0),
                ("recvmsg", 0, 512),
                ("recvmsg", 0, 512),
                ("clock_gettime", 0, 0),
            ],
            in_window_post=[
                ("sendmsg", 512, 0),
                ("sendmsg", 256, 0),
                ("epoll_ctl", 0, 0),
            ],
            out_of_window=background,
            connection_setup=[
                ("accept4", 0, 0),
                ("setsockopt", 0, 0),
                ("setsockopt", 0, 0),
                ("epoll_ctl", 0, 0),
                # TLS handshake records (hello, cert, kex, finished).
                ("recvmsg", 0, 512), ("sendmsg", 2048, 0),
                ("recvmsg", 0, 256), ("sendmsg", 320, 0),
                ("recvmsg", 0, 128), ("sendmsg", 64, 0),
                ("getrandom", 0, 64),
                ("epoll_ctl", 0, 0),
            ],
        )

    @staticmethod
    def userlevel_tcp() -> "ServerSyscallProfile":
        """A user-level TCP stack (mTCP/DPDK style) inside the process.

        The paper's §V-B7 optimization: pulling the TCP stack into the
        enclave removes almost every per-request syscall — polling the
        NIC rings is plain memory access — at the cost of a larger TCB.
        Per-request compute rises slightly (the stack now runs in the
        application), while the OCALL-able syscall count collapses.
        """
        return ServerSyscallProfile(
            in_window_pre=[("clock_gettime", 0, 0)],
            in_window_post=[],
            out_of_window=[
                ("clock_gettime", 0, 0),
                ("sched_yield", 0, 0),
                ("clock_gettime", 0, 0),
            ],
            connection_setup=[("getrandom", 0, 64)],
            # TCP/IP processing moves into the application.
            parse_fixed_cycles=9_000 + 14_000,
            parse_per_byte_cycles=14.0 + 3.5,
        )

    # The "Pistache server inside an enclave costs ~650 EENTER/EEXITs"
    # startup footprint: sockets, TLS context, thread pool, epoll setup.
    @staticmethod
    def pistache_startup() -> List[SyscallSpec]:
        setup: List[SyscallSpec] = [
            ("socket", 0, 0), ("setsockopt", 0, 0), ("bind", 0, 0),
            ("listen", 0, 0), ("epoll_ctl", 0, 0), ("clone", 0, 0),
            ("clone", 0, 0), ("getrandom", 0, 48),
        ]
        # TLS context: certificate chain + DH parameter loading.
        for _ in range(40):
            setup.extend(
                [("openat", 0, 0), ("read", 0, 16384), ("close", 0, 0)]
            )
        # Thread pool + allocator warmup.
        for _ in range(130):
            setup.extend([("mmap", 0, 0), ("brk", 0, 0), ("futex", 0, 0), ("clock_gettime", 0, 0)])
        return setup


class HandlerContext:
    """What a request handler sees: the runtime of the serving module.

    The server measures L_F around the handler invocation, so everything
    the handler charges through ``context.runtime`` (the AKA function
    execution) lands in the functional-latency window; the surrounding
    parse/serialize/TLS/syscall work lands in L_T only.
    """

    def __init__(self, server: "HttpServer") -> None:
        self.server = server
        self.runtime = server.runtime


class HttpServer:
    """An epoll-reactor HTTPS server bound to a bridge endpoint."""

    def __init__(
        self,
        name: str,
        runtime: Runtime,
        network: BridgeNetwork,
        profile: Optional[ServerSyscallProfile] = None,
        tls_cost: Optional[TlsCostModel] = None,
        metrics_cap: Optional[int] = None,
    ) -> None:
        self.name = name
        self.runtime = runtime
        self.network = network
        self.endpoint = network.attach(name)
        self.profile = profile or ServerSyscallProfile.pistache_like()
        self.tls_cost = tls_cost or TlsCostModel()
        self.started = False
        self._routes: Dict[Tuple[str, str], Handler] = {}
        # Per-request latency records, in microseconds of simulated time,
        # aggregate and per path (so AKA-endpoint metrics are not diluted
        # by auxiliary requests).  ``metrics_cap`` bounds the raw sample
        # windows for campaign-scale runs; the ``.stats`` running summaries
        # stay exact over every request regardless of the cap.
        # Fault-injection hook: consulted at the top of :meth:`serve`;
        # raises (e.g. UnresponsiveError) to fail the request.  None in
        # fault-free runs — zero cost on the hot path.
        self.fault_gate: Optional[Callable[["HttpServer"], None]] = None
        self.metrics_cap = metrics_cap
        self.lf_us: BoundedSeries = BoundedSeries(metrics_cap)
        self.lt_us: BoundedSeries = BoundedSeries(metrics_cap)
        self.lf_us_by_path: Dict[str, BoundedSeries] = {}
        self.lt_us_by_path: Dict[str, BoundedSeries] = {}
        # Full server occupancy per request (L_T window + reactor chatter):
        # the serial-capacity denominator for horizontal-scaling estimates.
        self.busy_us: BoundedSeries = BoundedSeries(metrics_cap)
        self.requests_served = 0
        # HandlerContext carries only (server, runtime), both fixed for the
        # server's lifetime: one instance serves every request.
        self._handler_context = HandlerContext(self)
        # The per-request syscall profiles replay for every serve();
        # compiling them hoists all per-spec cost/stat lookups into setup.
        self._in_window_pre = runtime.compile_syscalls(self.profile.in_window_pre)
        self._in_window_post = runtime.compile_syscalls(self.profile.in_window_post)
        self._out_of_window = runtime.compile_syscalls(self.profile.out_of_window)
        self._connection_setup = runtime.compile_syscalls(self.profile.connection_setup)

    # ------------------------------------------------------------- routing

    def route(self, method: str, path: str, handler: Handler) -> None:
        self._routes[(method.upper(), path)] = handler

    def _resolve(self, method: str, path: str) -> Handler:
        try:
            return self._routes[(method.upper(), path)]
        except KeyError:
            raise HttpError(f"{self.name}: no route {method} {path}")

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Run the server startup syscall footprint (socket/TLS/pool)."""
        if self.started:
            raise HttpError(f"server {self.name!r} already started")
        self.runtime.syscall_batch(ServerSyscallProfile.pistache_startup())
        self.started = True

    def stop(self) -> None:
        self.network.detach(self.name)
        self.started = False

    # ------------------------------------------------------------- serving

    def _run_profile(self, specs: List[SyscallSpec]) -> None:
        self.runtime.syscall_batch(specs)

    def accept_connection(self, connection: "HttpConnection") -> None:
        if not self.started:
            raise HttpError(f"server {self.name!r} not started")
        self.runtime.syscall_profile(self._connection_setup)
        # TLS handshake crypto on the server side.
        self.runtime.compute(self.tls_cost.handshake_cycles)

    def serve(self, connection: "HttpConnection", protected_request: bytes) -> bytes:
        """Handle one protected request; returns the protected response.

        Measures L_T from request-received to response-sent and lets the
        handler measure L_F inside; both are appended to the server's
        metric lists.
        """
        if not self.started:
            raise HttpError(f"server {self.name!r} not started")
        if self.fault_gate is not None:
            self.fault_gate(self)
        runtime = self.runtime
        host = runtime.host
        clock = host.clock
        # Span tracing (repro.obs): spans open/close at the same clock
        # reads the measure() windows use, so traced L_F/L_T values are
        # bit-identical to the metric series below.  ``tracer is None``
        # (the default) keeps this a two-comparison hot path.
        tracer = host.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None

        # First-request lazy initialization (Fig 10b's initial response).
        warmup = getattr(runtime, "lazy_warmup", None)
        if warmup is not None:
            warmup()

        # Pop the in-flight trace context before any handling; it is
        # re-attached to the parsed request below so the header exists
        # exactly where a real server would see it.
        traceparent = connection.traceparent
        if traceparent is not None:
            connection.traceparent = None
        srv_trace = (
            tracer.begin(self.name, kind="sbi.server", server=self.name)
            if tracer is not None else None
        )
        try:
            # The busy window wraps L_T plus the reactor chatter after it;
            # nesting the with-blocks keeps spans closed LIFO even when a
            # handler raises (the error path must not leak an open span).
            with clock.measure() as busy_span:
                lt_trace = (
                    tracer.begin("window", kind="L_T")
                    if tracer is not None else None
                )
                try:
                    with clock.measure() as lt_span:
                        runtime.syscall_profile(self._in_window_pre)
                        runtime.compute(
                            self.tls_cost.record_cycles(len(protected_request))
                        )
                        raw = connection.server_tls.unprotect(protected_request)
                        request = HttpRequest.from_wire(raw)
                        if traceparent is not None:
                            request.headers["traceparent"] = traceparent
                        runtime.compute(
                            self.profile.parse_fixed_cycles
                            + self.profile.parse_per_byte_cycles * len(raw)
                        )
                        handler = self._resolve(request.method, request.path)
                        context = self._handler_context
                        lf_trace = (
                            tracer.begin(request.path, kind="L_F", path=request.path)
                            if tracer is not None else None
                        )
                        try:
                            with clock.measure() as lf_span:
                                response = handler(request, context)
                        finally:
                            if lf_trace is not None:
                                tracer.end(lf_trace)
                        response_raw = response.wire_bytes()
                        runtime.compute(self.tls_cost.record_cycles(len(response_raw)))
                        protected_response = connection.server_tls.protect(response_raw)
                        runtime.syscall_profile(self._in_window_post)
                finally:
                    if lt_trace is not None:
                        tracer.end(lt_trace)

                # Reactor chatter around the request (outside the L_T window
                # but inside the client's response-time window).
                runtime.syscall_profile(self._out_of_window)
        finally:
            if srv_trace is not None:
                tracer.end(srv_trace)
        if srv_trace is not None:
            srv_trace.tags.update(path=request.path, status=response.status)
            if traceparent is not None:
                srv_trace.tags["traceparent"] = traceparent

        self.busy_us.append(busy_span.us)
        self.lf_us.append(lf_span.us)
        self.lt_us.append(lt_span.us)
        lf_series = self.lf_us_by_path.get(request.path)
        if lf_series is None:
            lf_series = self.lf_us_by_path[request.path] = BoundedSeries(self.metrics_cap)
            self.lt_us_by_path[request.path] = BoundedSeries(self.metrics_cap)
        lf_series.append(lf_span.us)
        self.lt_us_by_path[request.path].append(lt_span.us)
        self.requests_served += 1
        return protected_response

    # ------------------------------------------------------------- metrics

    def reset_stats(self) -> None:
        """Forget all latency series and counters (a process restart).

        Fresh ``BoundedSeries`` objects are allocated rather than cleared
        in place: a registry that adopted the old series must observably
        diverge from the restarted server, exactly as a scraper loses a
        real process's metrics across a restart.
        """
        self.lf_us = BoundedSeries(self.metrics_cap)
        self.lt_us = BoundedSeries(self.metrics_cap)
        self.busy_us = BoundedSeries(self.metrics_cap)
        self.lf_us_by_path = {}
        self.lt_us_by_path = {}
        self.requests_served = 0

    def collect_metrics(self, registry, component: Optional[str] = None) -> None:
        """Snapshot this server into a ``repro.obs`` registry (pull).

        Latency histograms *adopt* the live BoundedSeries — no copying,
        and the registry sees every later request for free.  ``component``
        adds a label for P-AKA modules (eamf/eausf/eudm).
        """
        labels = {"server": self.name}
        if component is not None:
            labels["component"] = component
        registry.counter("http_requests_served_total", **labels).set(
            self.requests_served
        )
        registry.histogram_from_series("http_lf_us", self.lf_us, **labels)
        registry.histogram_from_series("http_lt_us", self.lt_us, **labels)
        registry.histogram_from_series("http_busy_us", self.busy_us, **labels)
        for path, series in sorted(self.lf_us_by_path.items()):
            registry.histogram_from_series(
                "http_lf_us_by_path", series, path=path, **labels
            )
        for path, series in sorted(self.lt_us_by_path.items()):
            registry.histogram_from_series(
                "http_lt_us_by_path", series, path=path, **labels
            )


@dataclass
class HttpConnection:
    """An established TLS connection from a client to a server.

    ``traceparent`` is the in-flight W3C trace-context header for the
    request currently traversing this connection.  It rides the
    connection object instead of the wire bytes on purpose: every wire
    cost in the model is length-dependent (TLS record cycles, bridge
    transmit, per-byte parse), so carrying the header in ``raw`` would
    make a traced run spend different simulated time than an untraced
    one.  The server pops it and materialises the real header on the
    parsed request, which is where handlers (and tests) observe it.
    """

    client_name: str
    server: HttpServer
    client_tls: TlsSession
    server_tls: TlsSession
    open: bool = True
    traceparent: Optional[str] = None


class HttpClient:
    """A client (e.g. a parent VNF) issuing requests over the bridge."""

    _CLIENT_REQUEST_SYSCALLS: List[SyscallSpec] = [
        ("sendmsg", 512, 0),
        ("epoll_wait", 0, 0),
        ("recvmsg", 0, 512),
        ("recvmsg", 0, 256),
        ("clock_gettime", 0, 0),
    ]
    _CLIENT_CONNECT_SYSCALLS: List[SyscallSpec] = [
        ("socket", 0, 0), ("connect", 0, 0), ("setsockopt", 0, 0),
        ("sendmsg", 512, 0), ("recvmsg", 0, 2048),
        ("sendmsg", 320, 0), ("recvmsg", 0, 320),
        ("getrandom", 0, 64), ("epoll_ctl", 0, 0),
    ]

    def __init__(
        self,
        name: str,
        runtime: Runtime,
        network: BridgeNetwork,
        tls_cost: Optional[TlsCostModel] = None,
    ) -> None:
        self.name = name
        self.runtime = runtime
        self.network = network
        # The client owns a bridge endpoint so that its traffic is real
        # frames on the wire (capturable by an on-path attacker).
        self.endpoint = network.attach(name)
        self.tls_cost = tls_cost or TlsCostModel()
        # Per-request / per-connect syscall profiles, precompiled once.
        self._request_profile = runtime.compile_syscalls(self._CLIENT_REQUEST_SYSCALLS)
        self._connect_profile = runtime.compile_syscalls(self._CLIENT_CONNECT_SYSCALLS)
        # BoundedSeries (uncapped: list-compatible) rather than plain lists
        # so metric collection adopts them instead of re-observing every
        # sample into fresh histograms on each scrape — the difference
        # between O(total samples) and O(1) per armed-scraper pull.
        self.response_times_us: BoundedSeries = BoundedSeries()
        self.response_times_by_server: Dict[str, BoundedSeries] = {}
        # Resilience accounting (only moves when faults/retries happen).
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0

    def connect(self, server: HttpServer, handshake_secret: bytes = b"") -> HttpConnection:
        """TCP + mutual-TLS connection establishment."""
        secret = handshake_secret or f"{self.name}->{server.name}".encode()
        self.runtime.syscall_profile(self._connect_profile)
        self.runtime.compute(self.tls_cost.handshake_cycles)
        # SYN/ACK + TLS flights across the bridge (alternating directions).
        for index, nbytes in enumerate((64, 64, 2048, 384)):
            if index % 2 == 0:
                self.network.transmit(self.name, server.name, bytes(nbytes))
            else:
                self.network.transmit(server.name, self.name, bytes(nbytes))
        client_tls, server_tls = establish_session(
            self.name, server.name, secret, cost_model=self.tls_cost
        )
        connection = HttpConnection(
            client_name=self.name, server=server,
            client_tls=client_tls, server_tls=server_tls,
        )
        server.accept_connection(connection)
        return connection

    def request(
        self,
        connection: HttpConnection,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Dict[str, str]] = None,
        timeout_us: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> HttpResponse:
        """One request/response exchange; records the response time R.

        With ``retry`` set, transport failures (timeouts, lost frames,
        dead endpoints) are retried with exponential backoff, transparently
        re-establishing the TLS connection in place.  Protocol errors
        (no route, malformed exchange) are deterministic and never
        retried.  Without ``retry`` and ``timeout_us`` the behaviour is
        exactly the pre-resilience hot path.
        """
        if retry is None:
            return self._attempt(connection, method, path, body, headers, timeout_us)
        deadline = timeout_us if timeout_us is not None else retry.timeout_us
        last_error: Optional[Exception] = None
        for attempt in range(1, retry.max_attempts + 1):
            if attempt > 1:
                self.retries += 1
                backoff = retry.backoff_us(
                    attempt - 1, self.runtime.host.rng, f"retry.{self.name}"
                )
                self.runtime.host.clock.advance_us(backoff)
            try:
                if not connection.open:
                    self._reconnect(connection)
                return self._attempt(connection, method, path, body, headers, deadline)
            except (RequestTimeout, UnresponsiveError, NetworkError) as exc:
                last_error = exc
                # The transport is suspect: force a fresh connection on
                # the next attempt (TCP would be in an undefined state).
                connection.open = False
        assert last_error is not None
        raise last_error

    def _attempt(
        self,
        connection: HttpConnection,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]],
        timeout_us: Optional[float],
    ) -> HttpResponse:
        """A single request/response attempt with an optional deadline."""
        if not connection.open:
            raise HttpError("connection is closed")
        host = self.runtime.host
        clock = host.clock
        request = HttpRequest(
            method=method, path=path, body=body, headers=headers or {}
        )
        host.events.emit(
            clock.timestamp(), "sbi.request",
            src=self.name, dst=connection.server.name,
            method=method, path=path,
        )
        raw = request.wire_bytes()
        tracer = host.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        # The span opens at the same clock read the R measure() window
        # uses and closes with no advance in between, so the traced
        # ``r_us`` tag is bit-identical to ``response_times_us``.
        req_trace = (
            tracer.begin(
                path, kind="sbi.request",
                src=self.name, dst=connection.server.name,
                method=method, path=path,
            )
            if tracer is not None else None
        )
        if req_trace is not None and req_trace.trace_id is not None:
            # W3C traceparent (version 00, sampled) minted from the open
            # sbi.request span; propagated out-of-band — see
            # HttpConnection.traceparent for why it stays off the wire.
            connection.traceparent = (
                f"00-{req_trace.trace_id}-{req_trace.span_id}-01"
            )
        try:
            return self._attempt_traced(
                connection, request, raw, timeout_us, req_trace
            )
        finally:
            if req_trace is not None:
                tracer.end(req_trace)

    def _attempt_traced(
        self,
        connection: HttpConnection,
        request: HttpRequest,
        raw: bytes,
        timeout_us: Optional[float],
        req_trace: Optional[object],
    ) -> HttpResponse:
        clock = self.runtime.host.clock
        method, path = request.method, request.path
        start_ns = clock.now_ns
        with clock.measure() as r_span:
            try:
                self.runtime.compute(self.tls_cost.record_cycles(len(raw)))
                protected = connection.client_tls.protect(raw)
                self.runtime.syscall_profile(self._request_profile)
                # Request transit, server handling, response transit — real
                # frames on the bridge (advances the clock per hop).
                self.network.transmit(self.name, connection.server.name, protected)
                protected_response = connection.server.serve(connection, protected)
                self.network.transmit(
                    connection.server.name, self.name, protected_response
                )
                self.runtime.compute(
                    self.tls_cost.record_cycles(len(protected_response))
                )
                response_raw = connection.client_tls.unprotect(protected_response)
            except (UnresponsiveError, FrameLost) as exc:
                # No response will ever arrive; the client blocks until
                # its deadline.  The measure() context pops the span on
                # the way out, so the error path leaks no open span.
                if timeout_us is None:
                    raise
                elapsed_us = (clock.now_ns - start_ns) / 1_000.0
                if timeout_us > elapsed_us:
                    clock.advance_us(timeout_us - elapsed_us)
                self.timeouts += 1
                raise RequestTimeout(
                    f"{self.name}->{connection.server.name} {method} {path}: "
                    f"no response within {timeout_us:.0f}us"
                ) from exc
        if timeout_us is not None and r_span.us > timeout_us:
            # The response arrived after the client already gave up
            # (e.g. an injected latency spike): it is discarded.
            self.timeouts += 1
            raise RequestTimeout(
                f"{self.name}->{connection.server.name} {method} {path}: "
                f"response after {r_span.us:.0f}us deadline {timeout_us:.0f}us"
            )
        self.response_times_us.append(r_span.us)
        by_server = self.response_times_by_server.get(connection.server.name)
        if by_server is None:
            by_server = self.response_times_by_server[
                connection.server.name
            ] = BoundedSeries()
        by_server.append(r_span.us)
        if req_trace is not None:
            req_trace.tags["r_us"] = r_span.us
        return HttpResponse.from_wire(response_raw)

    def _reconnect(self, connection: HttpConnection) -> None:
        """Re-establish a dead connection *in place*.

        Mutating the existing object keeps every cached reference (NF
        connection caches) valid — callers never learn the TCP session
        was replaced, just like a connection pool.
        """
        fresh = self.connect(connection.server)
        connection.client_tls = fresh.client_tls
        connection.server_tls = fresh.server_tls
        connection.open = True
        self.reconnects += 1

    def close(self, connection: HttpConnection) -> None:
        if connection.open:
            self.runtime.syscall("shutdown")
            self.runtime.syscall("close")
            connection.open = False

    # ------------------------------------------------------------- metrics

    def reset_stats(self) -> None:
        """Forget response times and resilience counters (a restart)."""
        self.response_times_us = BoundedSeries()
        self.response_times_by_server = {}
        self.retries = 0
        self.timeouts = 0
        self.reconnects = 0

    def collect_metrics(self, registry) -> None:
        """Snapshot this client into a ``repro.obs`` registry (pull).

        Response-time histograms *adopt* the live BoundedSeries — no
        copying and no re-observation, so a scrape costs O(1) per series
        no matter how many requests the campaign has issued.
        """
        labels = {"client": self.name}
        registry.counter("http_client_retries_total", **labels).set(self.retries)
        registry.counter("http_client_timeouts_total", **labels).set(self.timeouts)
        registry.counter("http_client_reconnects_total", **labels).set(
            self.reconnects
        )
        registry.histogram_from_series(
            "http_client_response_us", self.response_times_us, **labels
        )
        for server, series in sorted(self.response_times_by_server.items()):
            registry.histogram_from_series(
                "http_client_response_us_by_server", series,
                server=server, **labels
            )
