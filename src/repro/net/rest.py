"""REST conveniences over the HTTP layer.

The 5G SBI exchanges JSON bodies; these helpers keep the VNF and P-AKA
endpoint code terse while staying byte-faithful (hex-encoded octet
strings for the cryptographic parameters, matching Table I's byte
accounting on the wire model).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.net.codec import dumps_flat, loads_object
from repro.net.http import HttpRequest, HttpResponse


class JsonApiError(Exception):
    """A malformed or semantically invalid API payload."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def json_response(payload: Dict[str, Any], status: int = 200) -> HttpResponse:
    # dumps_flat is byte-identical to json.dumps(payload, sort_keys=True)
    # for the flat hex/str/int bodies the SBI exchanges (see net/codec.py).
    return HttpResponse(
        status=status,
        body=dumps_flat(payload),
        headers={"Content-Type": "application/json"},
    )


def error_response(error: JsonApiError) -> HttpResponse:
    return json_response({"error": error.message}, status=error.status)


def json_body(request: HttpRequest) -> Dict[str, Any]:
    try:
        return loads_object(request.body)
    except (UnicodeDecodeError, ValueError) as exc:
        if isinstance(exc, json.JSONDecodeError):
            raise JsonApiError(400, f"body is not valid JSON: {exc}")
        if isinstance(exc, UnicodeDecodeError):
            raise JsonApiError(400, f"body is not valid JSON: {exc}")
        raise JsonApiError(400, "JSON body must be an object")


def require_hex(data: Dict[str, Any], field: str, nbytes: int) -> bytes:
    """Fetch a hex-encoded octet string of exactly ``nbytes`` bytes."""
    value = data.get(field)
    if not isinstance(value, str):
        raise JsonApiError(400, f"missing or non-string field {field!r}")
    try:
        raw = bytes.fromhex(value)
    except ValueError:
        raise JsonApiError(400, f"field {field!r} is not valid hex")
    if len(raw) != nbytes:
        raise JsonApiError(
            400, f"field {field!r} must be {nbytes} bytes, got {len(raw)}"
        )
    return raw


def require_str(data: Dict[str, Any], field: str) -> str:
    value = data.get(field)
    if not isinstance(value, str) or not value:
        raise JsonApiError(400, f"missing or empty field {field!r}")
    return value


def require_int(data: Dict[str, Any], field: str) -> int:
    value = data.get(field)
    if not isinstance(value, int) or isinstance(value, bool):
        raise JsonApiError(400, f"missing or non-integer field {field!r}")
    return value
