"""Simulated networking: HTTPS/REST over the container bridge.

The paper's P-AKA modules are Pistache-based HTTPS servers speaking REST
over the OAI docker bridge.  This package models that stack end to end:
TCP/TLS connections with real record protection, an epoll-reactor server
whose syscall footprint is what becomes OCALLs under Gramine, and a small
REST routing layer used by both the 5G core VNFs and the P-AKA modules.
"""

from repro.net.http import (
    HandlerContext,
    HttpClient,
    HttpConnection,
    HttpError,
    HttpRequest,
    HttpResponse,
    HttpServer,
    ServerSyscallProfile,
)
from repro.net.rest import JsonApiError, json_body, json_response

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "HttpClient",
    "HttpConnection",
    "HttpError",
    "HandlerContext",
    "ServerSyscallProfile",
    "json_body",
    "json_response",
    "JsonApiError",
]
