"""Fast SBI message serialization.

Every SBI body in the simulator is a flat JSON object of strings
(hex-encoded octet strings, SUPIs), integers and booleans — Table I's
byte accounting depends on the exact wire form, so the encoder here is
**byte-identical** to ``json.dumps(payload, sort_keys=True)`` for those
payloads and falls back to :mod:`json` for anything richer (nested
containers, floats needing full repr rules, non-ASCII text).

Why not just call ``json.dumps``?  The registration hot path serializes
and parses ~14 bodies per registration; ``dumps`` pays encoder-object
construction and dispatch per call, and ``sorted`` re-sorts the same
small key sets millions of times per campaign.  The encoder below is a
precompiled-per-message-type scheme in spirit: the sort order of each
distinct key tuple (the "message type" — call sites build dict literals,
so insertion order identifies the shape) is computed once and memoised.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Tuple

# Characters json.dumps escapes inside strings (ensure_ascii=True also
# escapes non-ASCII; such strings take the fallback path).
_NEEDS_ESCAPE = re.compile(r'[\\"\x00-\x1f]')

# Key-tuple (insertion order) -> (sorted keys, keys are plain strings).
# SBI message shapes are a small fixed set, so this is effectively
# per-message-type: sort order and key validation compile once per shape.
_KEY_ORDER: Dict[Tuple[str, ...], Tuple[Tuple[str, ...], bool]] = {}


def _simple_str(value: str) -> bool:
    return value.isascii() and _NEEDS_ESCAPE.search(value) is None


def dumps_flat(payload: Dict[str, Any]) -> bytes:
    """Serialize a flat JSON object, byte-identical to
    ``json.dumps(payload, sort_keys=True).encode()``."""
    keys = tuple(payload)
    cached = _KEY_ORDER.get(keys)
    if cached is None:
        keys_ok = all(k.__class__ is str and _simple_str(k) for k in keys)
        cached = _KEY_ORDER[keys] = (tuple(sorted(keys)), keys_ok)
    order, keys_ok = cached
    if keys_ok:
        parts = []
        append = parts.append
        for key in order:
            value = payload[key]
            cls = value.__class__
            if cls is str:
                if not _simple_str(value):
                    break
                append(f'"{key}": "{value}"')
            elif cls is bool:
                append(f'"{key}": true' if value else f'"{key}": false')
            elif cls is int:
                append(f'"{key}": {value}')
            elif value is None:
                append(f'"{key}": null')
            else:
                break
        else:
            return ("{" + ", ".join(parts) + "}").encode()
    return json.dumps(payload, sort_keys=True).encode()


def loads_object(body: bytes) -> Dict[str, Any]:
    """Parse a JSON object body (the inverse of :func:`dumps_flat`).

    Thin wrapper over :func:`json.loads` (already a C scanner) that
    exists so the codec owns both directions; raises ``ValueError`` (or
    ``json.JSONDecodeError``, its subclass) on malformed input and
    ``TypeError``-free non-dict payloads are reported as ``ValueError``.
    """
    data = json.loads(body.decode())
    if not isinstance(data, dict):
        raise ValueError("JSON body must be an object")
    return data
