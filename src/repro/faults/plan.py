"""Seeded, clock-driven fault plans.

A :class:`FaultPlan` is a pure value: a set of fault *windows* on the
simulated timeline, generated from ``(seed, horizon, rates)`` with a
private :class:`random.Random` — the testbed's own RNG streams are never
touched, so attaching a plan to a run cannot perturb fault-free
behaviour, and the same ``(seed, plan)`` pair replays bit-identically.

The fault kinds mirror the paper's robustness facts: an enclave crash
costs a Fig-7-scale (~1 minute) reload before the module answers again;
AEX storms multiply the Table III interrupt rates; EPC pressure pushes
the host past the contention threshold that produces Fig 8's paging
cliff; NF death, link loss and latency spikes exercise the SBI plane
the way Michaelides et al. stress the network layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from enum import Enum
from typing import Dict, List, Sequence, Tuple

NS_PER_S = 1_000_000_000


class FaultKind(Enum):
    MODULE_CRASH = "module-crash"    # enclave dies; Fig-7-cost reload window
    NF_DEATH = "nf-death"            # core NF process dies, restarts later
    LINK_LOSS = "link-loss"          # frames dropped on the SBI bridge
    LATENCY_SPIKE = "latency-spike"  # extra per-frame transit latency
    EPC_PRESSURE = "epc-pressure"    # noisy neighbour fills the EPC
    AEX_STORM = "aex-storm"          # multiplied AEX interrupt rate


@dataclass(frozen=True)
class FaultWindow:
    """One fault, active on ``[start_ns, end_ns)`` of the run timeline."""

    kind: FaultKind
    target: str  # module / NF / bridge name
    start_ns: int
    end_ns: int
    # Kind-specific: loss probability (LINK_LOSS), extra µs per frame
    # (LATENCY_SPIKE), EPC fill fraction (EPC_PRESSURE), AEX rate
    # multiplier (AEX_STORM); unused for crash/death.
    magnitude: float = 0.0

    def active(self, rel_ns: int) -> bool:
        return self.start_ns <= rel_ns < self.end_ns

    @property
    def duration_s(self) -> float:
        return (self.end_ns - self.start_ns) / NS_PER_S


@dataclass(frozen=True)
class FaultRates:
    """Mean event rates, per simulated minute, for each fault kind."""

    module_crash_per_min: float = 0.0
    nf_death_per_min: float = 0.0
    link_loss_per_min: float = 0.0
    latency_spike_per_min: float = 0.0
    epc_pressure_per_min: float = 0.0
    aex_storm_per_min: float = 0.0

    def scaled(self, factor: float) -> "FaultRates":
        return FaultRates(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    @property
    def total_per_min(self) -> float:
        return sum(getattr(self, f.name) for f in fields(self))


#: A balanced mix exercising every fault kind; scale with ``.scaled()``.
BASELINE_RATES = FaultRates(
    module_crash_per_min=0.25,
    nf_death_per_min=0.25,
    link_loss_per_min=0.5,
    latency_spike_per_min=0.5,
    epc_pressure_per_min=0.25,
    aex_storm_per_min=0.25,
)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault windows for one run."""

    seed: int
    horizon_s: float
    windows: Tuple[FaultWindow, ...]

    @staticmethod
    def generate(
        seed: int,
        horizon_s: float,
        rates: FaultRates,
        module_targets: Sequence[str] = ("eudm", "eausf", "eamf"),
        nf_targets: Sequence[str] = ("udr", "udm", "ausf", "smf"),
        link_targets: Sequence[str] = ("oai-bridge",),
    ) -> "FaultPlan":
        """Draw a plan: Poisson arrivals per kind, kind-specific windows.

        Every draw comes from a private generator seeded from
        ``(seed, kind)``, so plans are reproducible and independent of
        the testbed RNG service.
        """
        windows: List[FaultWindow] = []

        def arrivals(salt: str, rate_per_min: float) -> List[Tuple[float, random.Random]]:
            if rate_per_min <= 0:
                return []
            rnd = random.Random(f"faultplan:{seed}:{salt}")
            rate_per_s = rate_per_min / 60.0
            out: List[Tuple[float, random.Random]] = []
            t = rnd.expovariate(rate_per_s)
            while t < horizon_s:
                out.append((t, rnd))
                t += rnd.expovariate(rate_per_s)
            return out

        def add(kind: FaultKind, target: str, start_s: float, dur_s: float,
                magnitude: float = 0.0) -> None:
            windows.append(
                FaultWindow(
                    kind=kind,
                    target=target,
                    start_ns=int(start_s * NS_PER_S),
                    end_ns=int((start_s + dur_s) * NS_PER_S),
                    magnitude=magnitude,
                )
            )

        if module_targets:
            for start, rnd in arrivals("module-crash", rates.module_crash_per_min):
                # The outage lasts a Fig-7-scale enclave reload (~1 min).
                reload_s = max(20.0, rnd.gauss(60.0, 4.0))
                add(FaultKind.MODULE_CRASH, rnd.choice(list(module_targets)),
                    start, reload_s)
            for start, rnd in arrivals("aex-storm", rates.aex_storm_per_min):
                add(FaultKind.AEX_STORM, rnd.choice(list(module_targets)),
                    start, rnd.uniform(5.0, 15.0), magnitude=rnd.uniform(5.0, 20.0))
        if nf_targets:
            for start, rnd in arrivals("nf-death", rates.nf_death_per_min):
                add(FaultKind.NF_DEATH, rnd.choice(list(nf_targets)),
                    start, rnd.uniform(5.0, 15.0))
        if link_targets:
            for start, rnd in arrivals("link-loss", rates.link_loss_per_min):
                add(FaultKind.LINK_LOSS, rnd.choice(list(link_targets)),
                    start, rnd.uniform(2.0, 8.0), magnitude=rnd.uniform(0.3, 0.9))
            for start, rnd in arrivals("latency-spike", rates.latency_spike_per_min):
                add(FaultKind.LATENCY_SPIKE, rnd.choice(list(link_targets)),
                    start, rnd.uniform(2.0, 10.0),
                    magnitude=rnd.uniform(30_000.0, 250_000.0))
        for start, rnd in arrivals("epc-pressure", rates.epc_pressure_per_min):
            add(FaultKind.EPC_PRESSURE, "epc", start,
                rnd.uniform(5.0, 20.0), magnitude=rnd.uniform(0.95, 1.0))

        windows.sort(key=lambda w: (w.start_ns, w.kind.value, w.target))
        return FaultPlan(seed=seed, horizon_s=horizon_s, windows=tuple(windows))

    # ------------------------------------------------------------- queries

    def by_kind(self) -> Dict[FaultKind, List[FaultWindow]]:
        out: Dict[FaultKind, List[FaultWindow]] = {}
        for window in self.windows:
            out.setdefault(window.kind, []).append(window)
        return out

    def counts(self) -> Dict[str, int]:
        return {
            kind.value: len(ws) for kind, ws in sorted(
                self.by_kind().items(), key=lambda kv: kv[0].value
            )
        }

    def describe(self) -> str:
        parts = [f"{k}×{n}" for k, n in self.counts().items()]
        return (
            f"FaultPlan(seed={self.seed}, horizon={self.horizon_s:.0f}s, "
            f"{', '.join(parts) if parts else 'fault-free'})"
        )
