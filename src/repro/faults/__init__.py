"""Deterministic fault injection & resilience for the shielded AKA plane.

``plan`` draws seeded fault windows (enclave crash + Fig-7 reload, AEX
storms, EPC pressure, NF death, link loss/latency spikes); ``injector``
executes a plan against a live testbed through zero-cost-when-off hooks;
``resilience`` holds the circuit breaker used by the NF base class (the
retry policy itself lives with the HTTP client).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BASELINE_RATES,
    FaultKind,
    FaultPlan,
    FaultRates,
    FaultWindow,
)
from repro.faults.resilience import DEFAULT_SBI_RETRY, CircuitBreaker, RetryPolicy

__all__ = [
    "BASELINE_RATES",
    "CircuitBreaker",
    "DEFAULT_SBI_RETRY",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRates",
    "FaultWindow",
    "RetryPolicy",
]
