"""Attaches a :class:`FaultPlan` to a live testbed.

The injector works through three hooks that are ``None`` (zero cost) in
fault-free runs:

* ``BridgeNetwork.link_filter`` — drops frames / adds latency during
  link-loss and latency-spike windows,
* ``HttpServer.fault_gate`` — raises :class:`UnresponsiveError` while a
  module is reloading (MODULE_CRASH) or an NF process is dead (NF_DEATH),
* :meth:`FaultInjector.tick` — called by the driving loop between
  arrivals to sync EPC-pressure noise residency and book AEX-storm
  interrupts on the module enclaves.

All randomness comes from the ``faults.*`` RNG streams, drawn only while
a window is active, so the golden fault-free clocks stay bit-identical
and a given ``(seed, plan)`` replays exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.faults.plan import FaultKind, FaultPlan, FaultWindow
from repro.net.http import HttpServer, UnresponsiveError
from repro.sgx.epc import EpcRegion
from repro.sim.sched import EventScheduler


class FaultInjector:
    """Deterministic executor of one fault plan over one testbed run."""

    def __init__(self, testbed, plan: FaultPlan) -> None:
        self.testbed = testbed
        self.plan = plan
        self.base_ns: Optional[int] = None
        self._last_tick_ns = 0
        self._noise_region: Optional[EpcRegion] = None
        self._gated: List[HttpServer] = []
        self._link_windows = [
            w for w in plan.windows
            if w.kind in (FaultKind.LINK_LOSS, FaultKind.LATENCY_SPIKE)
        ]
        self._epc_windows = [
            w for w in plan.windows if w.kind is FaultKind.EPC_PRESSURE
        ]
        self._storm_windows = [
            w for w in plan.windows if w.kind is FaultKind.AEX_STORM
        ]
        # Window-edge scheduler: tick() only runs the EPC / AEX-storm sync
        # scans while a matching window is (or was just) active; idle
        # ticks cost one heap-root comparison instead of a plan scan.
        self._sched: Optional[EventScheduler] = None
        self._epc_active = 0
        self._storm_active = 0
        self._storm_flush = False
        # Accounting surfaced by the availability experiment.
        self.frames_dropped = 0
        self.requests_refused = 0
        self.storm_aexs_booked = 0

    # -------------------------------------------------------------- metrics

    def collect_metrics(self, registry) -> None:
        """Snapshot injector accounting into a ``repro.obs`` registry."""
        labels = {"plan_seed": str(self.plan.seed)}
        registry.counter("fault_frames_dropped_total", **labels).set(
            self.frames_dropped
        )
        registry.counter("fault_requests_refused_total", **labels).set(
            self.requests_refused
        )
        registry.counter("fault_storm_aexs_total", **labels).set(
            self.storm_aexs_booked
        )

    # ------------------------------------------------------------ lifecycle

    def arm(self) -> "FaultInjector":
        """Anchor the plan at *now* and install the hooks."""
        if self.base_ns is not None:
            raise RuntimeError("injector already armed")
        clock = self.testbed.host.clock
        self.base_ns = clock.now_ns
        self._last_tick_ns = 0
        if self._link_windows:
            self.testbed.sbi.link_filter = self._link_filter
        sched = self._sched = EventScheduler()
        self._epc_active = 0
        self._storm_active = 0
        self._storm_flush = False
        for window in self._epc_windows:
            # Windows are active on [start, end): the start edge fires on
            # the first tick at/after start_ns; after the end edge the
            # lingering noise region keeps _sync_epc running once more to
            # release it.
            sched.schedule_at(window.start_ns, self._epc_edge_start)
            sched.schedule_at(window.end_ns, self._epc_edge_end)
        for window in self._storm_windows:
            # The storm books overlap with the *open* interval (from, to],
            # so the tick that crosses end_ns must still run one final
            # _book_aex_storms for the tail slice — the end edge sets
            # _storm_flush to request exactly that.
            sched.schedule_at(window.start_ns, self._storm_edge_start)
            sched.schedule_at(window.end_ns, self._storm_edge_end)
        for name, server in self._servers().items():
            gate = self._gate_for(name)
            if gate is not None:
                server.fault_gate = gate
                self._gated.append(server)
        return self

    def disarm(self) -> None:
        self.testbed.sbi.link_filter = None
        for server in self._gated:
            server.fault_gate = None
        self._gated.clear()
        self._clear_noise()
        self._sched = None
        self._epc_active = 0
        self._storm_active = 0
        self._storm_flush = False
        self.base_ns = None

    def _servers(self) -> Dict[str, HttpServer]:
        servers: Dict[str, HttpServer] = dict(self.testbed.module_servers())
        for nf in (
            self.testbed.nrf, self.testbed.udr, self.testbed.udm,
            self.testbed.ausf, self.testbed.amf, self.testbed.smf,
            self.testbed.upf,
        ):
            servers[nf.name] = nf.server
        return servers

    # ------------------------------------------------------------ hooks

    def _rel_ns(self) -> int:
        assert self.base_ns is not None, "injector not armed"
        return self.testbed.host.clock.now_ns - self.base_ns

    def _gate_for(self, target: str):
        windows = [
            w for w in self.plan.windows
            if w.target == target
            and w.kind in (FaultKind.MODULE_CRASH, FaultKind.NF_DEATH)
        ]
        if not windows:
            return None

        def gate(server: HttpServer) -> None:
            rel = self._rel_ns()
            for window in windows:
                if window.active(rel):
                    self.requests_refused += 1
                    raise UnresponsiveError(
                        f"{server.name} down ({window.kind.value}) until "
                        f"t+{window.end_ns / 1e9:.1f}s"
                    )

        return gate

    def _link_filter(self, src: str, dst: str, nbytes: int) -> Optional[float]:
        rel = self._rel_ns()
        extra_us = 0.0
        for window in self._link_windows:
            if not window.active(rel):
                continue
            if window.kind is FaultKind.LINK_LOSS:
                stream = self.testbed.host.rng.stream("faults.link")
                if stream.random() < window.magnitude:
                    self.frames_dropped += 1
                    return None
            else:  # LATENCY_SPIKE
                extra_us += window.magnitude
        return extra_us

    # ------------------------------------------------------------ ticking

    def tick(self) -> None:
        """Sync window-driven state; call between arrivals in the driving
        loop.  Idempotent at a given simulated time.

        With the edge scheduler armed, the per-tick scans only run while a
        matching window is active (or needs a final flush); skipped calls
        are exact no-ops — ``_sync_epc`` with no active window and no
        noise region does nothing, and ``_book_aex_storms`` outside every
        storm window books zero overlap.
        """
        rel = self._rel_ns()
        sched = self._sched
        if sched is None:
            self._sync_epc(rel)
            self._book_aex_storms(self._last_tick_ns, rel)
        else:
            sched.run_due(rel)
            if self._epc_active or self._noise_region is not None:
                self._sync_epc(rel)
            if self._storm_active or self._storm_flush:
                self._storm_flush = False
                self._book_aex_storms(self._last_tick_ns, rel)
        self._last_tick_ns = rel

    def _epc_edge_start(self) -> None:
        self._epc_active += 1

    def _epc_edge_end(self) -> None:
        self._epc_active -= 1

    def _storm_edge_start(self) -> None:
        self._storm_active += 1

    def _storm_edge_end(self) -> None:
        self._storm_active -= 1
        self._storm_flush = True

    def _sync_epc(self, rel_ns: int) -> None:
        epc = getattr(self.testbed.deployment, "epc_manager", None)
        if epc is None:
            return
        active = [
            w for w in self.plan.windows
            if w.kind is FaultKind.EPC_PRESSURE and w.active(rel_ns)
        ]
        if not active:
            self._clear_noise()
            return
        fraction = max(w.magnitude for w in active)
        if self._noise_region is None:
            self._noise_region = epc.create_region(
                "fault.noise", epc.capacity_bytes
            )
        # The noisy neighbour's paging happens on its own CPU time: no
        # clock charge here, but its residency (and the module pages it
        # evicts) push the Gramine runtimes into the contention regime.
        target = int(fraction * epc.capacity_pages)
        others = epc.resident_pages - self._noise_region.resident_pages
        want = max(0, target - others)
        have = self._noise_region.resident_pages
        if want > have:
            epc.fault_in(self._noise_region, want - have, charge_time=False)
        elif want < have:
            self._noise_region.resident_pages = want

    def _clear_noise(self) -> None:
        if self._noise_region is None:
            return
        epc = self.testbed.deployment.epc_manager
        epc.release_region(self._noise_region.name)
        self._noise_region = None

    def _book_aex_storms(self, from_ns: int, to_ns: int) -> None:
        if to_ns <= from_ns:
            return
        modules = getattr(self.testbed.paka, "modules", None) if self.testbed.paka else None
        if not modules:
            return
        for window in self.plan.windows:
            if window.kind is not FaultKind.AEX_STORM:
                continue
            module = modules.get(window.target)
            enclave = getattr(module.runtime, "enclave", None) if module else None
            if enclave is None:
                continue
            overlap_ns = min(to_ns, window.end_ns) - max(from_ns, window.start_ns)
            if overlap_ns <= 0:
                continue
            # The storm multiplies the interrupt rate: book the surplus
            # (multiplier − 1) on top of the idle baseline the testbed
            # already accounts.  Time itself already passed.
            extra_s = (overlap_ns / 1e9) * max(0.0, window.magnitude - 1.0)
            before = enclave.stats.aexs
            enclave.run_idle(extra_s, advance_clock=False)
            self.storm_aexs_booked += enclave.stats.aexs - before
