"""Client-side resilience primitives for the SBI plane.

:class:`repro.net.http.RetryPolicy` (re-exported here) covers the
request path; the :class:`CircuitBreaker` sits one layer up, in
:class:`repro.fivegc.nf_base.NetworkFunction`, so an NF whose peer is
known-dead fails fast — a 503 in microseconds instead of burning a full
timeout-and-retry ladder per call while the peer reloads its enclave.
All timing is simulated-clock nanoseconds; nothing here draws from any
RNG, so breakers add zero nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.http import DEFAULT_SBI_RETRY, RetryPolicy  # noqa: F401  (re-export)


@dataclass
class CircuitBreaker:
    """A per-peer breaker: closed → open after N consecutive transport
    failures, half-open (single probe) after a cooldown."""

    name: str = ""
    failure_threshold: int = 3
    cooldown_us: float = 5_000_000.0

    consecutive_failures: int = 0
    opened_at_ns: Optional[int] = None
    # Accounting for the availability experiment.
    times_opened: int = 0
    fast_failures: int = 0

    @property
    def open(self) -> bool:
        return self.opened_at_ns is not None

    def allow(self, now_ns: int) -> bool:
        """May a call proceed at simulated time ``now_ns``?"""
        if self.opened_at_ns is None:
            return True
        if now_ns - self.opened_at_ns >= int(self.cooldown_us * 1_000):
            return True  # half-open: let one probe through
        self.fast_failures += 1
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at_ns = None

    def record_failure(self, now_ns: int) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            if self.opened_at_ns is None:
                self.times_opened += 1
            # (Re)start the cooldown — a failed half-open probe re-opens.
            self.opened_at_ns = now_ns
