"""Client-side resilience primitives for the SBI plane.

:class:`repro.net.http.RetryPolicy` (re-exported here) covers the
request path; the :class:`CircuitBreaker` sits one layer up, in
:class:`repro.fivegc.nf_base.NetworkFunction`, so an NF whose peer is
known-dead fails fast — a 503 in microseconds instead of burning a full
timeout-and-retry ladder per call while the peer reloads its enclave.
All timing is simulated-clock nanoseconds; nothing here draws from any
RNG, so breakers add zero nondeterminism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.http import DEFAULT_SBI_RETRY, RetryPolicy  # noqa: F401  (re-export)


@dataclass
class CircuitBreaker:
    """A per-peer breaker: closed → open after N consecutive transport
    failures, half-open (single probe) after a cooldown.

    Call-path contract: gate each call through :meth:`try_acquire` (which
    claims the single half-open probe slot and books ``fast_failures``),
    then report the result via :meth:`record_success` /
    :meth:`record_failure`.  :meth:`allow` is a *pure* query — metrics
    collection and speculative health checks may call it freely without
    corrupting accounting or stealing the probe slot.
    """

    name: str = ""
    failure_threshold: int = 3
    cooldown_us: float = 5_000_000.0

    consecutive_failures: int = 0
    opened_at_ns: Optional[int] = None
    # While open, exactly one caller may hold the half-open probe slot.
    probe_in_flight: bool = False
    # Accounting for the availability experiment.
    times_opened: int = 0
    fast_failures: int = 0

    @property
    def open(self) -> bool:
        return self.opened_at_ns is not None

    def _cooldown_elapsed(self, now_ns: int) -> bool:
        assert self.opened_at_ns is not None
        return now_ns - self.opened_at_ns >= int(self.cooldown_us * 1_000)

    def allow(self, now_ns: int) -> bool:
        """Would a call be admitted at simulated time ``now_ns``?

        Pure query: no counters move and the probe slot is not claimed,
        so passive observers never perturb the breaker state.
        """
        if self.opened_at_ns is None:
            return True
        if self.probe_in_flight:
            return False
        return self._cooldown_elapsed(now_ns)

    def try_acquire(self, now_ns: int) -> bool:
        """Admit one call at ``now_ns`` (the mutating call-path gate).

        Closed: always admitted.  Open with the cooldown elapsed: the
        *first* caller claims the half-open probe slot; every concurrent
        caller fails fast until that probe reports back.  Open otherwise:
        fail fast.
        """
        if self.opened_at_ns is None:
            return True
        if not self.probe_in_flight and self._cooldown_elapsed(now_ns):
            self.probe_in_flight = True
            return True
        self.fast_failures += 1
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.opened_at_ns = None
        self.probe_in_flight = False

    def record_failure(self, now_ns: int) -> None:
        was_probe = self.probe_in_flight
        self.probe_in_flight = False
        self.consecutive_failures += 1
        if not was_probe and self.consecutive_failures < self.failure_threshold:
            return
        # Every transition into the open state counts — including a
        # failed half-open probe re-opening after a cooldown (each is a
        # distinct fail-fast episode in the E-AVAIL accounting).
        if self.opened_at_ns is None or was_probe:
            self.times_opened += 1
        self.opened_at_ns = now_ns
