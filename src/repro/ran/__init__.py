"""RAN and UE models.

* :mod:`repro.ran.usim` — the USIM: subscriber credentials, MILENAGE on
  the UE side, AUTN verification with SQN window + resynchronisation,
* :mod:`repro.ran.ue` — the UE NAS state machine (and the commercial
  OnePlus 8 profile of the paper's OTA test, including its PLMN-detection
  and OS-version quirks),
* :mod:`repro.ran.gnb` — the gNB relaying NAS between UE and AMF with an
  air-interface latency model,
* :mod:`repro.ran.gnbsim` — the mass-registration driver (the paper's
  gNBSIM), used by every latency/statistics experiment,
* :mod:`repro.ran.sdr` — the USRP x310 software-defined-radio gNB of the
  OTA feasibility test (Fig 11 / Table IV).
"""

from repro.ran.usim import Usim, UsimAuthResult
from repro.ran.ue import CommercialUE, UserEquipment, ONEPLUS_8_PROFILE
from repro.ran.gnb import Gnb, AirLinkModel
from repro.ran.gnbsim import GnbSim, MassRegistrationReport
from repro.ran.sdr import OtaTestbed, UsrpX310

__all__ = [
    "Usim",
    "UsimAuthResult",
    "UserEquipment",
    "CommercialUE",
    "ONEPLUS_8_PROFILE",
    "Gnb",
    "AirLinkModel",
    "GnbSim",
    "MassRegistrationReport",
    "UsrpX310",
    "OtaTestbed",
]
