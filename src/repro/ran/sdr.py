"""OTA feasibility testbed (Fig 11 / Table IV).

A USRP x310 software-defined radio runs the OAI gNB; a COTS OnePlus 8
(OpenCells SIM programmed to the test PLMN 00101) registers with the 5G
core *through the P-AKA modules*.  The reproduction keeps the parts of
the paper's account that shaped the result:

* the UE only detects the gNB when it broadcasts the test PLMN,
* the OnePlus 8 needed one specific OxygenOS build end-to-end,
* despite the HMEE overheads, registration and a data session succeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.fivegc.messages import RegistrationOutcome
from repro.ran.gnb import AirLinkModel, Gnb
from repro.ran.ue import ONEPLUS_8_PROFILE, CommercialUE

if TYPE_CHECKING:  # avoid a circular import with repro.testbed
    from repro.testbed import Testbed


@dataclass(frozen=True)
class UsrpX310:
    """The SDR radio unit of Table IV."""

    frequency_ghz: float = 3.6192
    prbs: int = 106
    daughterboards: int = 2

    def validate(self) -> None:
        if not 0.4 <= self.frequency_ghz <= 6.0:
            raise ValueError(
                f"USRP x310 cannot serve {self.frequency_ghz} GHz (0.4–6 GHz)"
            )
        if self.prbs not in (24, 51, 106, 133, 162, 217, 273):
            raise ValueError(f"invalid NR PRB configuration: {self.prbs}")


# SDR-based gNBs schedule less tightly than production units; slightly
# higher per-message air latency than the gNBSIM model.
SDR_AIRLINK = AirLinkModel(base_ms=4.6, per_kb_ms=0.5, rrc_setup_ms=16.0)


@dataclass
class OtaResult:
    """One OTA attempt: detection, registration and data-session status."""

    detected: bool
    registration: Optional[RegistrationOutcome]
    data_session: bool

    @property
    def success(self) -> bool:
        return (
            self.detected
            and self.registration is not None
            and self.registration.success
            and self.data_session
        )


def table_iv_configuration(testbed: "Testbed", radio: UsrpX310) -> "list[dict]":
    """Table IV: the hardware and software configuration rows.

    Regenerated from the live objects rather than hard-coded, so the rows
    always reflect what actually ran.
    """
    host = testbed.host
    cpu = host.cpu.spec
    return [
        {"section": "Server", "key": "CPUs",
         "value": f"{len(host.cpus)} x {cpu.model}"},
        {"section": "Server", "key": "RAM / EPC",
         "value": f"{host.ram.capacity_bytes // 1024**3} GB DDR4 - "
                  f"{host.total_epc_bytes // 1024**3} GB EPC"},
        {"section": "Network", "key": "MCC / MNC",
         "value": f"{testbed.config.mcc} / {testbed.config.mnc}"},
        {"section": "Radio", "key": "Unit", "value": "USRP x310"},
        {"section": "Radio", "key": "PRBs", "value": str(radio.prbs)},
        {"section": "Radio", "key": "Frequency",
         "value": f"{radio.frequency_ghz} GHz"},
        {"section": "UE", "key": "Model", "value": ONEPLUS_8_PROFILE.model},
        {"section": "UE", "key": "OS",
         "value": f"{ONEPLUS_8_PROFILE.os_name} "
                  f"{ONEPLUS_8_PROFILE.required_os_version}"},
    ]


class OtaTestbed:
    """The Fig 11 setup: core server + USRP gNB + a commercial UE."""

    def __init__(
        self,
        testbed: "Testbed",
        radio: Optional[UsrpX310] = None,
        plmn: Optional[str] = None,
    ) -> None:
        self.testbed = testbed
        self.radio = radio or UsrpX310()
        self.radio.validate()
        broadcast_plmn = plmn or (testbed.config.mcc + testbed.config.mnc)
        self.gnb = Gnb(
            "oai-gnb-sdr",
            testbed.host,
            testbed.amf,
            plmn=broadcast_plmn,
            airlink=SDR_AIRLINK,
        )

    def run(self, ue: Optional[CommercialUE] = None) -> OtaResult:
        """Attempt the full OTA flow with a commercial UE."""
        if ue is None:
            candidate = self.testbed.add_subscriber(commercial=True)
            assert isinstance(candidate, CommercialUE)
            ue = candidate
        if not ue.can_detect_plmn(self.gnb.plmn):
            return OtaResult(detected=False, registration=None, data_session=False)
        outcome = self.gnb.register(ue, establish_session=True)
        data_session = bool(outcome.success and ue.ue_address)
        if data_session:
            # Exchange user-plane traffic through the UPF to confirm the
            # Test1-1 → OpenAirInterface connection of Fig 11(c).
            for _ in range(3):
                if not self.testbed.upf.forward_packet(ue.ue_address, 1200):
                    data_session = False
                    break
        return OtaResult(detected=True, registration=outcome, data_session=data_session)
