"""USIM — the UE-side secure element.

Holds the subscriber key K and operator constant OPc (the paper's
OpenCells programmable SIM), runs MILENAGE to verify the network's AUTN
challenge, enforces the SQN freshness window of TS 33.102 Annex C, and
produces RES* plus the UE-side key hierarchy on success — byte-identical
to what the home network derives, which is the whole point of AKA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.kdf import derive_kausf, derive_kseaf, derive_res_star
from repro.crypto.milenage import milenage_for
from repro.crypto.suci import Supi


class UsimError(Exception):
    """Credential misuse (bad sizes, unprogrammed SIM)."""


@dataclass
class UsimAuthResult:
    """Outcome of an AUTN verification attempt."""

    success: bool
    cause: Optional[str] = None  # "MAC_FAILURE" | "SYNCH_FAILURE"
    res_star: Optional[bytes] = None
    kausf: Optional[bytes] = None
    kseaf: Optional[bytes] = None
    auts: Optional[bytes] = None  # resync token on SYNCH_FAILURE


class Usim:
    """A programmed USIM."""

    # TS 33.102 Annex C: accept SQNs at most this far ahead of SQN_MS.
    SQN_DELTA = 1 << 28
    # SQN is a 48-bit counter; freshness is a *modular* comparison
    # (Annex C.2), so the window keeps working across wraparound.
    SQN_MODULUS = 1 << 48

    def __init__(
        self,
        supi: Supi,
        k: bytes,
        opc: bytes,
        amf_field: bytes = bytes.fromhex("8000"),
        sqn_ms: int = 0,
    ) -> None:
        if len(k) != 16 or len(opc) != 16:
            raise UsimError("K and OPc must be 16 bytes")
        self.supi = supi
        self._k = k
        self._opc = opc
        self.amf_field = amf_field
        self.sqn_ms = sqn_ms  # highest SQN accepted so far
        self._milenage = milenage_for(k, opc)

    # ------------------------------------------------------------ challenge

    def authenticate(self, rand: bytes, autn: bytes, snn: bytes) -> UsimAuthResult:
        """Verify the network challenge and derive the UE-side keys.

        Follows TS 33.102 §6.3.3: recover SQN through AK, check MAC-A,
        check SQN freshness; on a stale SQN produce the AUTS
        resynchronisation token instead of failing hard.
        """
        if len(rand) != 16 or len(autn) != 16:
            raise UsimError("RAND and AUTN must be 16 bytes")
        sqn_xor_ak, amf_field, mac_a = autn[:6], autn[6:8], autn[8:]
        vector = self._milenage.f2345(rand)
        sqn = bytes(s ^ a for s, a in zip(sqn_xor_ak, vector.ak))
        expected_mac, _ = self._milenage.f1(rand, sqn, amf_field)
        if expected_mac != mac_a:
            return UsimAuthResult(success=False, cause="MAC_FAILURE")

        sqn_value = int.from_bytes(sqn, "big")
        # Annex C.2 freshness: SEQ is fresh iff 0 < (SEQ - SEQ_MS) mod 2^48
        # <= Δ.  The naive ``sqn_ms < sqn_value`` form rejects every AUTN
        # once SQN_MS nears 2^48 (the network's next SQN wraps to a small
        # value), locking the USIM into an endless resync loop.
        delta = (sqn_value - self.sqn_ms) % self.SQN_MODULUS
        if not (0 < delta <= self.SQN_DELTA):
            return UsimAuthResult(
                success=False, cause="SYNCH_FAILURE", auts=self._build_auts(rand)
            )
        self.sqn_ms = sqn_value

        res_star = derive_res_star(vector.ck, vector.ik, snn, rand, vector.res)
        kausf = derive_kausf(vector.ck, vector.ik, snn, sqn_xor_ak)
        kseaf = derive_kseaf(kausf, snn)
        return UsimAuthResult(
            success=True, res_star=res_star, kausf=kausf, kseaf=kseaf
        )

    def _build_auts(self, rand: bytes) -> bytes:
        """AUTS = (SQN_MS ⊕ AK*) ‖ MAC-S (TS 33.102 §6.3.3)."""
        vector = self._milenage.f2345(rand)
        sqn_ms = self.sqn_ms.to_bytes(6, "big")
        # MAC-S uses the resync AMF value 0x0000.
        _, mac_s = self._milenage.f1(rand, sqn_ms, bytes(2))
        concealed = bytes(s ^ a for s, a in zip(sqn_ms, vector.ak_star))
        return concealed + mac_s


# Home-network side of resynchronisation; canonical home in repro.aka,
# re-exported here for callers thinking in UE/USIM terms.
from repro.aka import verify_auts  # noqa: E402  (re-export)
