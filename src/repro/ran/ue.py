"""User Equipment: NAS state machine + commercial-device profile.

A :class:`UserEquipment` conceals its SUPI into a SUCI, answers the AKA
challenge through its USIM, derives the NAS security context and completes
registration.  :class:`CommercialUE` layers the paper's OTA realities on
top (§V-B6): a COTS phone only *detects* the lab gNB when the broadcast
PLMN is the test network 00101, and the OnePlus 8 needed one specific
Oxygen OS build for a successful end-to-end connection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.crypto.cmac import nia2_mac
from repro.crypto.kdf import derive_kamf, derive_nas_keys
from repro.crypto.suci import Supi, conceal_supi
from repro.fivegc.nas_security import (
    UPLINK,
    NasSecurityError,
    ProtectedNasPdu,
    SecureNasChannel,
)
from repro.fivegc.messages import (
    AuthenticationFailure,
    AuthenticationReject,
    AuthenticationRequest,
    AuthenticationResponse,
    DeregistrationAccept,
    DeregistrationRequest,
    NasMessage,
    PduSessionEstablishmentAccept,
    PduSessionEstablishmentRequest,
    RegistrationAccept,
    RegistrationComplete,
    RegistrationRequest,
    SecurityModeCommand,
    SecurityModeComplete,
)
from repro.ran.usim import Usim
from repro.sim.rng import RngService

_ABBA = b"\x00\x00"


class UeError(Exception):
    """NAS protocol violation observed by the UE."""


class UserEquipment:
    """A 5G UE with a programmed USIM."""

    def __init__(
        self,
        name: str,
        usim: Usim,
        hn_public_key: bytes,
        rng: RngService,
        snn: str,
    ) -> None:
        self.name = name
        self.usim = usim
        self.hn_public_key = hn_public_key
        self.rng = rng
        self.snn = snn
        self.registered = False
        self.guti: Optional[str] = None
        self.kamf: Optional[bytes] = None
        self.k_nas_int: Optional[bytes] = None
        self.k_nas_enc: Optional[bytes] = None
        self.ue_address: Optional[str] = None
        self.uplink_count = 0
        self.downlink_count = 0
        self.failure_cause: Optional[str] = None
        self.secure_channel: Optional[SecureNasChannel] = None

    # ------------------------------------------------------------- uplink

    def build_registration_request(self) -> RegistrationRequest:
        """Conceal the SUPI and start registration."""
        self._reset_nas_state()
        eph = self.rng.randbytes(f"ue.{self.name}.ecies", 32)
        suci = conceal_supi(self.usim.supi, self.hn_public_key, eph)
        return RegistrationRequest(
            suci={
                "mcc": suci.mcc,
                "mnc": suci.mnc,
                "scheme": suci.protection_scheme,
                "keyId": suci.home_network_key_id,
                "schemeOutput": suci.scheme_output.hex(),
            }
        )

    def build_guti_registration_request(self) -> RegistrationRequest:
        """Re-register with the previously issued temporary identity —
        the SUCI/SIDF round is skipped, but authentication runs afresh."""
        if self.guti is None:
            raise UeError(f"{self.name}: no GUTI held; initial registration first")
        guti = self.guti
        self._reset_nas_state()
        return RegistrationRequest(guti=guti)

    def _reset_nas_state(self) -> None:
        """A new registration starts a fresh NAS security context."""
        self.registered = False
        self.guti = None
        self.kamf = None
        self.k_nas_int = None
        self.k_nas_enc = None
        self.ue_address = None
        self.uplink_count = 0
        self.downlink_count = 0
        self.failure_cause = None
        self.secure_channel = None
        if hasattr(self, "_kseaf"):
            del self._kseaf

    def handle_nas(self, message: NasMessage) -> Optional[NasMessage]:
        """Process one downlink NAS message; return the uplink reply."""
        if isinstance(message, ProtectedNasPdu):
            return self._on_protected_pdu(message)
        if isinstance(message, AuthenticationRequest):
            return self._on_authentication_request(message)
        if isinstance(message, SecurityModeCommand):
            return self._on_security_mode_command(message)
        if isinstance(message, RegistrationAccept):
            return self._on_registration_accept(message)
        if isinstance(message, AuthenticationReject):
            self.failure_cause = message.cause
            return None
        if isinstance(message, PduSessionEstablishmentAccept):
            self.ue_address = message.ue_address
            return None
        if isinstance(message, DeregistrationAccept):
            return self._on_deregistration_accept(message)
        raise UeError(f"{self.name}: unexpected downlink NAS {message.kind}")

    # -------------------------------------------------------------- steps

    def _on_authentication_request(
        self, message: AuthenticationRequest
    ) -> NasMessage:
        result = self.usim.authenticate(
            message.rand, message.autn, self.snn.encode()
        )
        if not result.success:
            self.failure_cause = result.cause
            return AuthenticationFailure(cause=result.cause or "", auts=result.auts)
        assert result.res_star is not None and result.kseaf is not None
        self._kseaf = result.kseaf
        return AuthenticationResponse(res_star=result.res_star)

    def _on_security_mode_command(self, message: SecurityModeCommand) -> NasMessage:
        kseaf = getattr(self, "_kseaf", None)
        if kseaf is None:
            raise UeError(f"{self.name}: SMC before authentication")
        self.kamf = derive_kamf(kseaf, str(self.usim.supi), _ABBA)
        self.k_nas_enc, self.k_nas_int = derive_nas_keys(self.kamf)
        expected = nia2_mac(
            self.k_nas_int, self.downlink_count, 1, 1, b"SecurityModeCommand"
        )
        self.downlink_count += 1
        if message.mac != expected:
            self.failure_cause = "SMC MAC invalid"
            return AuthenticationFailure(cause="SMC MAC invalid")
        mac = nia2_mac(
            self.k_nas_int, self.uplink_count, 1, 0, b"SecurityModeComplete"
        )
        self.uplink_count += 1
        return SecurityModeComplete(mac=mac)

    def _on_registration_accept(self, message: RegistrationAccept) -> Optional[NasMessage]:
        if self.k_nas_int is None:
            raise UeError(f"{self.name}: Registration Accept before SMC")
        if message.mac == b"":
            # Acknowledgement marker after Registration Complete.
            return None
        expected = nia2_mac(
            self.k_nas_int,
            self.downlink_count,
            1,
            1,
            b"RegistrationAccept" + message.guti.encode(),
        )
        self.downlink_count += 1
        if message.mac != expected:
            self.failure_cause = "Registration Accept MAC invalid"
            return AuthenticationFailure(cause="Registration Accept MAC invalid")
        self.guti = message.guti
        self.registered = True
        self.secure_channel = SecureNasChannel(
            self.k_nas_enc, self.k_nas_int, bearer=2, send_direction=UPLINK
        )
        mac = nia2_mac(
            self.k_nas_int, self.uplink_count, 1, 0, b"RegistrationComplete"
        )
        self.uplink_count += 1
        return RegistrationComplete(mac=mac)

    def build_pdu_session_request(self) -> ProtectedNasPdu:
        """PDU session requests travel ciphered once NAS security is up."""
        if not self.registered or self.secure_channel is None:
            raise UeError(f"{self.name}: cannot request PDU session before registering")
        return self.secure_channel.protect(
            PduSessionEstablishmentRequest(session_id=1, dnn="internet")
        )

    def build_deregistration_request(self) -> DeregistrationRequest:
        """Leave the network gracefully (integrity-protected)."""
        if not self.registered or self.k_nas_int is None:
            raise UeError(f"{self.name}: not registered")
        mac = nia2_mac(
            self.k_nas_int, self.uplink_count, 1, 0, b"DeregistrationRequest"
        )
        self.uplink_count += 1
        return DeregistrationRequest(mac=mac)

    def _on_deregistration_accept(self, message: DeregistrationAccept) -> None:
        if self.k_nas_int is None:
            raise UeError(f"{self.name}: DeregistrationAccept without context")
        expected = nia2_mac(
            self.k_nas_int, self.downlink_count, 1, 1, b"DeregistrationAccept"
        )
        self.downlink_count += 1
        if message.mac != expected:
            self.failure_cause = "Deregistration Accept MAC invalid"
            return None
        self._reset_nas_state()
        return None

    def _on_protected_pdu(self, pdu: ProtectedNasPdu) -> Optional[NasMessage]:
        if self.secure_channel is None:
            raise UeError(f"{self.name}: ciphered NAS before security activation")
        try:
            inner = self.secure_channel.unprotect(pdu)
        except NasSecurityError as error:
            self.failure_cause = f"NAS security failure: {error}"
            return None
        return self.handle_nas(inner)


@dataclass(frozen=True)
class CommercialUeProfile:
    """Behavioural quirks of a specific COTS device (Table IV)."""

    model: str
    os_name: str
    required_os_version: str
    detectable_plmns: "tuple[str, ...]" = ("00101",)


ONEPLUS_8_PROFILE = CommercialUeProfile(
    model="OnePlus 8",
    os_name="Android 11 / OxygenOS",
    required_os_version="11.0.11.11.IN21DA",
    detectable_plmns=("00101",),
)


class CommercialUE(UserEquipment):
    """A COTS phone: PLMN detection + OS-version compatibility gates.

    The paper observed that (a) with custom mobile country/network codes
    the device would not detect the OAI gNB at all, and (b) end-to-end
    connection required one specific OxygenOS build.
    """

    def __init__(
        self,
        *args,
        profile: CommercialUeProfile = ONEPLUS_8_PROFILE,
        os_version: str = ONEPLUS_8_PROFILE.required_os_version,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.profile = profile
        self.os_version = os_version

    def can_detect_plmn(self, plmn: str) -> bool:
        """Cell search: only test PLMNs are detected on a lab gNB."""
        return plmn in self.profile.detectable_plmns

    @property
    def os_compatible(self) -> bool:
        return self.os_version == self.profile.required_os_version
