"""gNB: relays NAS between UE and AMF, with an air-interface model.

The gNB is a *trusted* entity in the paper's threat model.  Its job here
is to run the registration loop: carry each NAS message over the radio
link (scheduling + HARQ + processing latency) and hand it to the AMF over
N2.  The end-to-end session-setup time of Table II's discussion —
≈62 ms, of which SGX contributes ≈5 % — emerges from this model plus the
core's processing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.fivegc.amf import Amf
from repro.fivegc.messages import (
    AuthenticationReject,
    NasMessage,
    RegistrationOutcome,
)
from repro.hw.host import PhysicalHost
from repro.ran.ue import CommercialUE, UserEquipment
from repro.sim.metrics import BoundedSeries

# Exemplar bucket bounds for the sojourn histogram, as OpenMetrics ``le``
# label strings paired with their numeric bound (ms).  One exemplar — the
# most recent (value, trace_id, observed_at_ns) — is retained per bucket,
# which is exactly the OpenMetrics exemplar model.
SOJOURN_EXEMPLAR_BUCKETS_MS: Tuple[Tuple[float, str], ...] = (
    (50.0, "50"), (100.0, "100"), (250.0, "250"), (500.0, "500"),
    (1000.0, "1000"), (2500.0, "2500"), (float("inf"), "+Inf"),
)


@dataclass(frozen=True)
class AirLinkModel:
    """Per-message radio latency (scheduling grant + transmission + HARQ)."""

    base_ms: float = 4.35
    per_kb_ms: float = 0.35
    rrc_setup_ms: float = 13.0  # RRC connection establishment, once per UE

    def message_ms(self, nbytes: int) -> float:
        return self.base_ms + self.per_kb_ms * (nbytes / 1024.0)


class Gnb:
    """A gNB serving one tracking area, attached to one AMF."""

    _N2_LATENCY_US = 140.0  # gNB ↔ AMF transport (same site)
    _MAX_NAS_ROUNDS = 12

    def __init__(
        self,
        name: str,
        host: PhysicalHost,
        amf: Amf,
        plmn: str = "00101",
        airlink: Optional[AirLinkModel] = None,
        router: Optional[object] = None,
    ) -> None:
        self.name = name
        self.host = host
        self.amf = amf
        self.plmn = plmn
        self.airlink = airlink or AirLinkModel()
        # Sharded control plane: a ControlPlaneRouter pins each UE to an
        # AMF replica by consistent-hashing its SUPI.  None (the default)
        # keeps the single-AMF N2 binding.
        self.router = router
        self.registrations_attempted = 0
        self.registrations_succeeded = 0
        # Registration sojourn (simulated ms) per attempt: outcome time
        # minus the attempt's *arrival* — the scheduled slot when the
        # caller paces arrivals on a grid, the call instant otherwise.
        # Queueing delay and admission-shed fast rejects are both
        # included, so the scraped histogram carries exactly the deadline
        # accounting the survivability campaign reports (ROADMAP item 4:
        # a pure-queueing collapse must be visible to the SLO engine).
        self.sojourn_ms = BoundedSeries()
        # Per-bucket sojourn exemplars: le label -> (value_ms, trace_id,
        # observed_at_ns).  Populated only while a trace-context-armed
        # tracer is installed; the collector attaches this dict to the
        # sojourn histogram so the exporter can emit OpenMetrics
        # exemplars and the Tsdb can link alerts to trace ids.
        self.sojourn_exemplars: Dict[str, Tuple[float, str, int]] = {}

    # --------------------------------------------------------------- radio

    def _air(self, message: NasMessage) -> None:
        latency = self.host.rng.jitter(
            f"gnb.{self.name}.air", self.airlink.message_ms(message.approx_bytes()), 0.08
        )
        self.host.clock.advance_ms(latency)

    def _n2(self) -> None:
        self.host.clock.advance_us(
            self.host.rng.jitter(f"gnb.{self.name}.n2", self._N2_LATENCY_US, 0.05)
        )

    # ------------------------------------------------------------- tracing

    def _record_trace(
        self,
        tracer: object,
        root: object,
        trace_id: str,
        supi: Optional[str],
        attempt: int,
        success: bool,
        sojourn_ns: int,
    ) -> None:
        """Exemplar + TraceStore bookkeeping for one traced registration.

        Runs after the root span closed and the sojourn is known: records
        the per-bucket exemplar (last trace to land in each bucket) and
        offers the finished tree to the tracer's store.  A stored tree is
        snapshotted to dicts, so the spans are recycled immediately —
        campaign memory stays bounded by the store cap, not the horizon.
        """
        value_ms = sojourn_ns / 1e6
        for bound, le in SOJOURN_EXEMPLAR_BUCKETS_MS:
            if value_ms <= bound:
                self.sojourn_exemplars[le] = (
                    value_ms, trace_id, self.host.clock.now_ns
                )
                break
        store = tracer.store
        if store is not None:
            store.offer(
                root, trace_id, supi=supi, attempt=attempt,
                success=success, sojourn_ns=sojourn_ns,
            )
            tracer.recycle(root)

    # -------------------------------------------------------- registration

    def register(
        self,
        ue: UserEquipment,
        establish_session: bool = True,
        initial: bool = True,
        arrival_ns: Optional[int] = None,
    ) -> RegistrationOutcome:
        """Run the full registration (and optional PDU session) for ``ue``.

        ``initial=False`` re-registers with the UE's held 5G-GUTI (the
        SUCI/SIDF round is skipped; authentication still runs afresh).
        ``arrival_ns`` is the attempt's scheduled arrival on the
        simulated clock: callers that pace arrivals on a grid pass the
        slot time so the recorded sojourn includes queueing delay behind
        earlier work; by default the sojourn is pure service time.
        Returns the outcome including the end-to-end session setup time in
        simulated milliseconds.
        """
        self.registrations_attempted += 1
        if arrival_ns is None:
            arrival_ns = self.host.clock.now_ns
        if isinstance(ue, CommercialUE) and not ue.can_detect_plmn(self.plmn):
            self.sojourn_ms.append((self.host.clock.now_ns - arrival_ns) / 1e6)
            return RegistrationOutcome(
                success=False,
                failure_cause=f"UE cannot detect PLMN {self.plmn} "
                f"(custom MCC/MNC are not detected by COTS devices)",
            )
        if isinstance(ue, CommercialUE) and not ue.os_compatible:
            self.sojourn_ms.append((self.host.clock.now_ns - arrival_ns) / 1e6)
            return RegistrationOutcome(
                success=False,
                failure_cause=f"{ue.profile.model} OS {ue.os_version} cannot "
                f"complete an end-to-end connection (requires "
                f"{ue.profile.required_os_version})",
            )

        # N2 routing: a sharded deployment pins the UE to its slice's AMF
        # (ring pick on the SUPI, same hash every layer applies); the
        # unsharded path keeps the static binding.
        amf = (
            self.router.amf_for(str(ue.usim.supi))
            if self.router is not None
            else self.amf
        )
        clock = self.host.clock
        # Span tracing (repro.obs): the registration root wraps the same
        # measure() window as session_setup_ms, so the traced duration is
        # bit-identical; each NAS round gets a child span.
        tracer = self.host.tracer
        if tracer is not None and not tracer.enabled:
            tracer = None
        # Deterministic trace context: minted from (seed, SUPI, attempt)
        # before the root span opens so every span in this registration
        # carries the same trace_id.  No-op (returns None) unless the
        # installed tracer was armed with a trace_seed.
        trace_id = (
            tracer.start_trace(str(ue.usim.supi))
            if tracer is not None else None
        )
        trace_ctx = (None, None, 0)
        root = (
            tracer.begin("registration", kind="registration", ue=ue.name)
            if tracer is not None else None
        )
        exchanges = 0
        try:
            with clock.measure() as setup_span:
                clock.advance_ms(
                    self.host.rng.jitter(
                        f"gnb.{self.name}.rrc", self.airlink.rrc_setup_ms, 0.06
                    )
                )
                uplink: Optional[NasMessage] = (
                    ue.build_registration_request()
                    if initial
                    else ue.build_guti_registration_request()
                )
                while uplink is not None and exchanges < self._MAX_NAS_ROUNDS:
                    nas_trace = (
                        tracer.begin(
                            type(uplink).__name__, kind="nas", round=exchanges + 1
                        )
                        if tracer is not None else None
                    )
                    try:
                        self._air(uplink)
                        self._n2()
                        downlink = amf.handle_nas(ue.name, uplink, via=self.name)
                        exchanges += 1
                        self._n2()
                        self._air(downlink)
                    finally:
                        if nas_trace is not None:
                            tracer.end(nas_trace)
                    if isinstance(downlink, AuthenticationReject):
                        ue.failure_cause = downlink.cause
                        break
                    uplink = ue.handle_nas(downlink)

                if ue.registered and establish_session:
                    # The PDU session exchange travels ciphered (128-NEA2)
                    # over the freshly established NAS security context.
                    pdu_trace = (
                        tracer.begin("PduSessionRequest", kind="nas")
                        if tracer is not None else None
                    )
                    try:
                        pdu_request = ue.build_pdu_session_request()
                        self._air(pdu_request)
                        self._n2()
                        accept = amf.handle_nas(ue.name, pdu_request, via=self.name)
                        exchanges += 1
                        self._n2()
                        self._air(accept)
                        ue.handle_nas(accept)
                    finally:
                        if pdu_trace is not None:
                            tracer.end(pdu_trace)
        finally:
            if root is not None:
                tracer.end(
                    root, success=ue.registered, nas_exchanges=exchanges
                )
            if trace_id is not None:
                # Close the trace context even on exception paths so a
                # stale trace_id can never bleed onto unrelated spans.
                trace_ctx = tracer.end_trace()

        if ue.registered:
            self.registrations_succeeded += 1
        sojourn_ns = clock.now_ns - arrival_ns
        self.sojourn_ms.append(sojourn_ns / 1e6)
        if trace_id is not None and root is not None:
            self._record_trace(
                tracer, root, trace_id, trace_ctx[1], trace_ctx[2],
                ue.registered, sojourn_ns,
            )
        # Continuous monitoring: let an installed scraper sample at the
        # registration boundary (pull-only; after the measure window and
        # all spans closed, so clocks and traces are unaffected).
        monitor = self.host.monitor
        if monitor is not None:
            monitor.tick()
        return RegistrationOutcome(
            success=ue.registered,
            supi=str(ue.usim.supi) if ue.registered else None,
            guti=ue.guti,
            failure_cause=ue.failure_cause,
            session_setup_ms=setup_span.ms,
            nas_exchanges=exchanges,
        )
