"""gNBSIM — mass gNB/UE simulation driver.

The paper uses gNBSIM to establish gNB–UE connections with the core at
scale and to run the Table III methodology: register 1..N UEs back to
back, snapshot the Gramine SGX counters around each registration, and
difference consecutive snapshots to get the per-registration cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.fivegc.messages import RegistrationOutcome
from repro.sgx.stats import SgxStats

if TYPE_CHECKING:  # avoid a circular import with repro.testbed
    from repro.testbed import Testbed


@dataclass
class MassRegistrationReport:
    """Everything one gNBSIM campaign produced."""

    outcomes: List[RegistrationOutcome] = field(default_factory=list)
    # module name -> list of per-registration SgxStats deltas
    per_registration_stats: Dict[str, List[SgxStats]] = field(default_factory=dict)
    # module name -> counter totals at campaign end
    final_stats: Dict[str, SgxStats] = field(default_factory=dict)

    @property
    def successes(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.success)

    @property
    def failures(self) -> int:
        return len(self.outcomes) - self.successes

    def mean_setup_ms(self) -> float:
        values = [
            outcome.session_setup_ms
            for outcome in self.outcomes
            if outcome.success and outcome.session_setup_ms is not None
        ]
        if not values:
            raise ValueError("no successful registrations to average")
        return sum(values) / len(values)

    def mean_transition_delta(self, module: str) -> float:
        """Mean EENTER delta per registration for ``module`` (Table III)."""
        deltas = self.per_registration_stats.get(module, [])
        if not deltas:
            raise ValueError(f"no per-registration stats for module {module!r}")
        return sum(d.eenters for d in deltas) / len(deltas)


class GnbSim:
    """Registers batches of simulated UEs through a testbed."""

    def __init__(self, testbed: "Testbed") -> None:
        self.testbed = testbed

    def register_ues(
        self,
        count: int,
        establish_session: bool = True,
        inter_registration_idle_s: float = 0.0,
    ) -> MassRegistrationReport:
        """Register ``count`` fresh UEs back to back.

        ``inter_registration_idle_s`` inserts idle windows between
        registrations (the servers block in epoll, accumulating AEXs).
        """
        report = MassRegistrationReport()
        modules = self.testbed.paka.modules if self.testbed.paka else {}
        for name in modules:
            report.per_registration_stats[name] = []

        for index in range(count):
            before: Dict[str, SgxStats] = {}
            for name, module in modules.items():
                stats = module.runtime.sgx_stats
                if stats is not None:
                    before[name] = stats.snapshot()

            ue = self.testbed.add_subscriber()
            outcome = self.testbed.register(ue, establish_session=establish_session)
            report.outcomes.append(outcome)

            for name, module in modules.items():
                stats = module.runtime.sgx_stats
                if stats is not None and name in before:
                    report.per_registration_stats[name].append(
                        stats.delta(before[name])
                    )
            if inter_registration_idle_s > 0:
                self.testbed.idle(inter_registration_idle_s)

        for name, module in modules.items():
            stats = module.runtime.sgx_stats
            if stats is not None:
                report.final_stats[name] = stats.snapshot()
        return report

    def warm_up(self, registrations: int = 2) -> None:
        """Prime connections and first-request caches before measuring
        (the paper's *stable* response regime)."""
        for _ in range(registrations):
            ue = self.testbed.add_subscriber()
            outcome = self.testbed.register(ue, establish_session=False)
            if not outcome.success:
                raise RuntimeError(
                    f"warm-up registration failed: {outcome.failure_cause}"
                )
