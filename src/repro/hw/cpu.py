"""CPU model: cycle→time conversion and SGX capability flags.

Latency costs across the SGX and Gramine models are expressed in CPU
cycles (matching how the literature reports enclave transition costs) and
converted to simulated nanoseconds through the CPU's clock frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import NS_PER_S, SimClock


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a CPU package."""

    model: str
    frequency_hz: float
    physical_cores: int
    sgx_version: int  # 0 = no SGX, 1 = SGXv1, 2 = SGXv2 (EDMM capable)
    max_epc_bytes: int  # per-package EPC limit

    @property
    def sgx_capable(self) -> bool:
        return self.sgx_version >= 1


# The paper's testbed CPU: Intel Xeon Silver 4314 (SGXv2, 8 GB EPC/package).
XEON_SILVER_4314 = CpuSpec(
    model="Intel Xeon Silver 4314",
    frequency_hz=2.40e9,
    physical_cores=16,
    sgx_version=2,
    max_epc_bytes=8 * 1024**3,
)


class Cpu:
    """A CPU package bound to a simulated clock.

    All cost-model code converts cycles to time through :meth:`spend_cycles`
    so that a different CPU spec transparently rescales every latency.
    """

    def __init__(self, spec: CpuSpec, clock: SimClock) -> None:
        self.spec = spec
        self.clock = clock
        self._cycles_spent = 0

    @property
    def cycles_spent(self) -> int:
        """Total cycles accounted on this package since construction."""
        return self._cycles_spent

    def spend_cycles(self, cycles: float) -> None:
        """Advance simulated time by ``cycles`` at this CPU's frequency."""
        if cycles < 0:
            raise ValueError(f"negative cycle cost: {cycles}")
        self._cycles_spent += int(cycles)
        self.clock.advance_cycles(cycles, self.spec.frequency_hz)

    def round_cycle_cost(self, cycles: float) -> "tuple[int, int]":
        """The exact ``(cycles_spent, clock_ns)`` increments one
        :meth:`spend_cycles` call for ``cycles`` would apply.

        Hot paths that fuse several cycle charges into one clock update
        convert each component through this (same truncation, same
        rounding) and add the sums via :meth:`spend_preconverted`, so the
        fused charge is bit-identical to the unfused call sequence.
        """
        return int(cycles), int(round(cycles * NS_PER_S / self.spec.frequency_hz))

    def spend_preconverted(self, cycles_int: int, ns: int) -> None:
        """Apply pre-rounded increments from :meth:`round_cycle_cost` sums."""
        self._cycles_spent += cycles_int
        self.clock.now_ns += ns

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds without spending them."""
        return cycles * 1e9 / self.spec.frequency_hz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.spec.frequency_hz / 1e9
