"""Physical hardware model.

Models the paper's testbed server (Dell PowerEdge R450, 2× Intel Xeon
Silver 4314 @ 2.40 GHz, 512 GB DDR4, 16 GB combined EPC) at the level of
detail the experiments need: CPU cycle accounting, RAM capacity and the
SGX Processor Reserved Memory carve-out.
"""

from repro.hw.cpu import Cpu, CpuSpec, XEON_SILVER_4314
from repro.hw.memory import MemoryRegion, Ram
from repro.hw.host import PhysicalHost, paper_testbed_host

__all__ = [
    "Cpu",
    "CpuSpec",
    "XEON_SILVER_4314",
    "MemoryRegion",
    "Ram",
    "PhysicalHost",
    "paper_testbed_host",
]
