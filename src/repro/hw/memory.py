"""RAM and memory-region model.

SGX reserves a slice of physical memory at boot (the Processor Reserved
Memory, PRM), most of which forms the Enclave Page Cache (EPC).  We track
regions and allocations so the EPC pager (:mod:`repro.sgx.epc`) and the
attack simulator (:mod:`repro.security`) can reason about what memory is
readable by whom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

PAGE_SIZE = 4096


class OutOfMemoryError(Exception):
    """Raised when an allocation exceeds the region's capacity."""


@dataclass
class MemoryRegion:
    """A named region of physical memory with allocation accounting."""

    name: str
    capacity_bytes: int
    encrypted: bool = False
    _allocations: Dict[str, int] = field(default_factory=dict, repr=False)

    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, owner: str, nbytes: int) -> None:
        """Allocate ``nbytes`` for ``owner`` (accumulates per owner)."""
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if nbytes > self.free_bytes:
            raise OutOfMemoryError(
                f"region {self.name!r}: requested {nbytes} B, "
                f"only {self.free_bytes} B free of {self.capacity_bytes} B"
            )
        self._allocations[owner] = self._allocations.get(owner, 0) + nbytes

    def release(self, owner: str) -> int:
        """Free everything owned by ``owner``; returns bytes released."""
        return self._allocations.pop(owner, 0)

    def owned_by(self, owner: str) -> int:
        return self._allocations.get(owner, 0)


class Ram:
    """Host DRAM with an optional PRM carve-out for SGX."""

    def __init__(self, capacity_bytes: int, prm_bytes: int = 0) -> None:
        if prm_bytes > capacity_bytes:
            raise ValueError("PRM cannot exceed total RAM")
        self.general = MemoryRegion("ram.general", capacity_bytes - prm_bytes)
        self.prm = MemoryRegion("ram.prm", prm_bytes, encrypted=True)

    @property
    def capacity_bytes(self) -> int:
        return self.general.capacity_bytes + self.prm.capacity_bytes
