"""Physical host: CPU packages + RAM + shared simulation services.

A host is the unit of co-residency in the threat model: containers,
enclaves and attacker processes deployed on the same host share its clock,
RNG and memory.  The paper's deployment policy requires each P-AKA module
to be co-located with its parent VNF on the same host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.hw.cpu import Cpu, CpuSpec, XEON_SILVER_4314
from repro.hw.memory import Ram
from repro.sim.clock import SimClock
from repro.sim.events import EventLog
from repro.sim.rng import RngService

if TYPE_CHECKING:  # avoid a runtime import cycle with repro.obs
    from repro.obs.scrape import Scraper
    from repro.obs.trace import Tracer


@dataclass
class PhysicalHost:
    """A COTS server in the NFV infrastructure."""

    name: str
    clock: SimClock
    rng: RngService
    events: EventLog
    cpus: List[Cpu] = field(default_factory=list)
    ram: Optional[Ram] = None
    # Registration-scoped span tracing (repro.obs).  None (the default)
    # disables tracing at the cost of one attribute read per hook; an
    # installed tracer records span trees without advancing the clock,
    # so traced runs stay bit-identical in simulated time.
    tracer: Optional["Tracer"] = field(default=None, repr=False)
    # Continuous monitoring (repro.obs.scrape).  Same contract as the
    # tracer: None costs one attribute read per hook, and an installed
    # scraper only *reads* — registries, counters and the clock — so a
    # monitored run spends identical simulated nanoseconds.
    monitor: Optional["Scraper"] = field(default=None, repr=False)

    @property
    def cpu(self) -> Cpu:
        """Primary CPU package (experiments pin to one package)."""
        if not self.cpus:
            raise RuntimeError(f"host {self.name!r} has no CPU")
        return self.cpus[0]

    @property
    def sgx_capable(self) -> bool:
        return any(c.spec.sgx_capable for c in self.cpus)

    @property
    def total_epc_bytes(self) -> int:
        """Combined EPC across packages (paper testbed: 16 GB)."""
        return sum(c.spec.max_epc_bytes for c in self.cpus if c.spec.sgx_capable)


def paper_testbed_host(
    name: str = "poweredge-r450",
    seed: int = 0,
    cpu_spec: CpuSpec = XEON_SILVER_4314,
    n_cpus: int = 2,
    ram_bytes: int = 512 * 1024**3,
    event_log_capacity: Optional[int] = None,
) -> PhysicalHost:
    """Build the paper's Dell PowerEdge R450 testbed host.

    Two SGXv2-capable Xeon Silver 4314 packages, 512 GB DDR4 and a 16 GB
    combined EPC carve-out.  ``event_log_capacity`` bounds the event log
    for campaign-scale runs (an SGX registration emits ~1k events; 10k UEs
    would otherwise retain millions of records).
    """
    clock = SimClock()
    rng = RngService(seed)
    events = EventLog(capacity=event_log_capacity)
    host = PhysicalHost(name=name, clock=clock, rng=rng, events=events)
    host.cpus = [Cpu(cpu_spec, clock) for _ in range(n_cpus)]
    prm = sum(spec.max_epc_bytes for spec in [cpu_spec] * n_cpus if spec.sgx_capable)
    host.ram = Ram(capacity_bytes=ram_bytes, prm_bytes=prm)
    return host
