#!/usr/bin/env python3
"""Mass registration with gNBSIM: latency + SGX statistics at scale.

Runs the paper's measurement methodology: registers a batch of UEs
through the container and SGX deployments, prints the per-module
L_F / L_T / response-time comparison (Figs 9–10, Table II) and the SGX
transition statistics per registration (Table III).

Run:  python examples/mass_registration.py [n_ues]
"""

import sys
from statistics import mean

from repro.experiments.harness import MODULE_AKA_PATH
from repro.paka.deploy import IsolationMode
from repro.ran.gnbsim import GnbSim
from repro.testbed import Testbed, TestbedConfig


def run_campaign(isolation: IsolationMode, n_ues: int):
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=3))
    sim = GnbSim(testbed)
    sim.warm_up(2)  # enter the stable-response regime
    report = sim.register_ues(n_ues, establish_session=False)
    return testbed, report


def main() -> None:
    n_ues = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    print(f"Registering {n_ues} UEs per deployment (plus 2 warm-ups)...\n")

    results = {}
    for isolation in (IsolationMode.CONTAINER, IsolationMode.SGX):
        testbed, report = run_campaign(isolation, n_ues)
        assert report.failures == 0
        results[isolation] = (testbed, report)
        print(f"{isolation.value}: {report.successes}/{n_ues} registered, "
              f"mean setup {report.mean_setup_ms():.2f} ms")

    print("\nPer-module latency comparison (stable regime, microseconds):")
    print("module |  L_F cont |  L_F sgx |  L_T cont |  L_T sgx | L_T factor")
    for name in ("eudm", "eausf", "eamf"):
        row = []
        for isolation in (IsolationMode.CONTAINER, IsolationMode.SGX):
            testbed, _ = results[isolation]
            server = testbed.paka.modules[name].server
            path = MODULE_AKA_PATH[name]
            row.append(mean(server.lf_us_by_path[path][2:]))
            row.append(mean(server.lt_us_by_path[path][2:]))
        lf_c, lt_c, lf_s, lt_s = row
        print(
            f"{name:>6} | {lf_c:9.1f} | {lf_s:8.1f} | {lt_c:9.1f} |"
            f" {lt_s:8.1f} |   x{lt_s / lt_c:.2f}"
        )

    print("\nSGX statistics per registration (Table III methodology):")
    _, sgx_report = results[IsolationMode.SGX]
    for name in ("eudm", "eausf", "eamf"):
        deltas = sgx_report.per_registration_stats[name]
        eenters = [d.eenters for d in deltas]
        print(
            f"  {name:>6}: EENTERs/registration ≈ {mean(eenters[1:]):.0f} "
            f"(first registration {eenters[0]} incl. lazy warmup)"
        )
    totals = sgx_report.final_stats["eudm"]
    print(f"  eudm totals: EENTER={totals.eenters} EEXIT={totals.eexits} "
          f"AEX={totals.aexs}")


if __name__ == "__main__":
    main()
