#!/usr/bin/env python3
"""The threat model in action: co-residency → escape → key theft.

Walks the paper's Fig 3 attack chain against two deployments of the same
5G-AKA slice.  Against plain containers the attacker exfiltrates the
subscriber key K and the freshly derived K_AUSF/K_SEAF/K_AMF; against the
P-AKA (SGX) deployment the identical attack reads only MEE ciphertext.
Finishes with the full Table V key-issue evaluation.

Run:  python examples/attack_simulation.py
"""

from repro.paka.deploy import IsolationMode
from repro.security.attacks import MemoryIntrospectionAttack
from repro.security.keyissues import evaluate_key_issues, format_table_v
from repro.security.threat import Attacker
from repro.testbed import Testbed, TestbedConfig


def attack_deployment(isolation: IsolationMode) -> None:
    print(f"\n=== Deployment: {isolation.value} ===")
    testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=13))
    ue = testbed.add_subscriber()
    assert testbed.register(ue, establish_session=False).success
    print(f"UE {ue.usim.supi} registered; modules now hold live key material.")

    mallory = Attacker("mallory", host=testbed.host, engine=testbed.engine)
    print("Attack chain:")
    mallory.achieve_coresidency()
    mallory.escalate("CVE-2022-31705")
    for line in mallory.log:
        print(f"  • {line}")

    result = MemoryIntrospectionAttack().run(mallory, testbed)
    if result.succeeded:
        print("MEMORY INTROSPECTION SUCCEEDED — exfiltrated:")
        for key, value in sorted(result.evidence.items()):
            print(f"    {key} = {value}")
        stolen = result.evidence.get(f"eudm/k:{ue.usim.supi}")
        assert stolen and bytes.fromhex(stolen) == ue.usim._k
        print("  ...including the subscriber's long-term key K. Game over.")
    else:
        print(f"Memory introspection FAILED: {result.notes}.")
        print("  The EPC is ciphertext to everything but the CPU package.")


def main() -> None:
    attack_deployment(IsolationMode.CONTAINER)
    attack_deployment(IsolationMode.SGX)

    print("\n=== Table V: full key-issue evaluation ===")
    container = Testbed.build(TestbedConfig(isolation=IsolationMode.CONTAINER, seed=14))
    hmee = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=14))
    verdicts = evaluate_key_issues(container, hmee)
    print(format_table_v(verdicts))
    mitigated = sum(1 for v in verdicts if v.hmee_effective)
    print(f"\nHMEE mitigated {mitigated}/13 key issues "
          f"(4 identified by 3GPP, 9 more argued by the paper).")


if __name__ == "__main__":
    main()
