#!/usr/bin/env python3
"""Slice lifecycle: GSC build → sign → launch → attest → seal → teardown.

Shows the operator-facing deployment pipeline of §IV-C piece by piece,
below the Testbed convenience layer: graminizing a module image, signing
it, loading the enclave through the PAL under aesmd launch control,
verifying it by remote attestation, sealing a credential to it, and
tearing the slice down (including what happens when someone tampers with
the image).

Run:  python examples/slice_lifecycle.py
"""

from repro.container.engine import ContainerEngine
from repro.container.image import oai_base_image
from repro.gramine.gsc import build_gsc_image, sign_gsc_image
from repro.gramine.manifest import GramineManifest
from repro.gramine.pal import PlatformAdaptationLayer
from repro.hw.host import paper_testbed_host
from repro.sgx.aesm import AesmDaemon, LaunchDeniedError
from repro.sgx.attestation import AttestationService, QuotingEnclave, verify_quote
from repro.sgx.epc import EpcManager
from repro.sgx.errors import AttestationError
from repro.sgx.sealing import SealPolicy, seal, unseal

OPERATOR_KEY = b"vno-operator-signing-key-2024-001"


def main() -> None:
    host = paper_testbed_host()
    print(f"Host: {host.name} — {host.cpu.spec.model} x{len(host.cpus)}, "
          f"{host.total_epc_bytes // 1024**3} GB combined EPC")

    # 1. Build the module image and graminize it.
    image, _ = oai_base_image("eudm-aka", bulk_mb=3000)
    manifest = GramineManifest(
        entrypoint=image.entrypoint,
        enclave_size="512M",
        max_threads=4,
        preheat_enclave=True,
        enable_stats=True,
    )
    gsc = build_gsc_image(image, manifest)
    print(f"\n[gsc build] {image.reference} -> {gsc.image.reference}")
    print(f"  trusted files: {len(gsc.manifest.trusted_files)} paths, "
          f"{gsc.build_info.trusted_files_bytes / 1024**3:.2f} GB to verify at load")

    # 2. An unsigned production enclave cannot launch.
    epc = EpcManager(host.total_epc_bytes, host.cpu, host.rng)
    pal = PlatformAdaptationLayer(host, epc, AesmDaemon("platform-0"))
    try:
        pal.load_enclave(gsc.build_info)
        raise SystemExit("unsigned enclave launched?!")
    except LaunchDeniedError as denial:
        print(f"\n[launch control] unsigned image refused: {denial}")

    # 3. Sign and launch.
    signed = sign_gsc_image(gsc, OPERATOR_KEY)
    enclave, span = pal.load_enclave(signed.build_info)
    print(f"\n[launch] enclave up in {span.seconds:.1f} s "
          f"(MRENCLAVE {enclave.measurement.hex()[:16]}…)")

    # 4. Remote attestation before trusting it with keys.
    service = AttestationService()
    qe = QuotingEnclave("platform-0", service)
    quote = qe.quote(enclave, report_data=b"provisioning-kex-pubkey")
    verify_quote(quote, service, expected_mrenclave=enclave.measurement.mrenclave,
                 allow_debug=True)
    print("[attest] quote verified against the expected MRENCLAVE")

    # A tampered build would measure differently and fail verification:
    try:
        verify_quote(quote, service, expected_mrenclave=bytes(32), allow_debug=True)
    except AttestationError as error:
        print(f"[attest] tampered expectation rejected: {error}")

    # 5. Seal a credential to the enclave identity (the KI 27 pattern).
    credential = b"nudm-tls-client-certificate-key"
    blob = seal(enclave, credential, policy=SealPolicy.MRSIGNER,
                platform_id="platform-0")
    assert unseal(enclave, blob, platform_id="platform-0") == credential
    print(f"[seal] credential sealed ({len(blob.ciphertext)} bytes ciphertext); "
          f"unseals only inside the operator's enclaves on this platform")

    # 6. Teardown scrubs the EPC.
    enclave.destroy()
    print(f"\n[teardown] EPC resident pages after destroy: {epc.resident_pages}")


if __name__ == "__main__":
    main()
