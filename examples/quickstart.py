#!/usr/bin/env python3
"""Quickstart: register a UE through SGX-shielded 5G-AKA functions.

Builds the paper's testbed (5G core + P-AKA modules inside simulated SGX
enclaves via Gramine/GSC), provisions one subscriber, runs the full
registration + PDU session establishment, and prints what happened —
including the enclave load times and the per-module latencies.

Run:  python examples/quickstart.py
"""

from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig


def main() -> None:
    print("Building testbed (5G core + P-AKA modules in SGX enclaves)...")
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=1))

    print("\nEnclave load times (Fig 7 regime):")
    for name, span in testbed.paka.load_spans.items():
        print(f"  {name:>6}: {span.seconds:6.1f} s  ({span.minutes:.3f} min)")

    print("\nProvisioning a subscriber and registering its UE...")
    ue = testbed.add_subscriber()
    outcome = testbed.register(ue)

    print(f"  registered: {outcome.success}")
    print(f"  SUPI:       {outcome.supi}")
    print(f"  GUTI:       {outcome.guti}")
    print(f"  UE address: {ue.ue_address}")
    print(f"  session setup: {outcome.session_setup_ms:.2f} ms (simulated)")
    print(f"  NAS exchanges: {outcome.nas_exchanges}")

    # The AKA guarantee: UE and network derived identical keys without K
    # ever crossing the wire.
    amf_session = testbed.amf._sessions[ue.name]
    assert ue.kamf == amf_session.kamf
    print(f"\n  K_AMF agreed on both sides: {ue.kamf.hex()[:32]}…")

    print("\nPer-module AKA endpoint latencies (first registration):")
    from repro.experiments.harness import MODULE_AKA_PATH

    for name, module in testbed.paka.modules.items():
        path = MODULE_AKA_PATH[name]
        lf = module.server.lf_us_by_path[path][-1]
        lt = module.server.lt_us_by_path[path][-1]
        print(f"  {name:>6}: L_F {lf:6.1f} us   L_T {lt:6.1f} us")

    print("\nSGX transition counters so far (Gramine enable_stats):")
    for name, module in testbed.paka.modules.items():
        stats = module.runtime.sgx_stats
        print(
            f"  {name:>6}: EENTER={stats.eenters}  EEXIT={stats.eexits}  "
            f"OCALLs={stats.ocalls}"
        )

    testbed.teardown()
    print("\nDone.")


if __name__ == "__main__":
    main()
