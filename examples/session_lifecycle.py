#!/usr/bin/env python3
"""The full subscriber lifecycle through the shielded control plane.

Initial SUCI registration → ciphered PDU session → deregistration →
GUTI re-registration → SQN desynchronisation healed by AUTS resync
(verified inside the eUDM enclave).  Everything runs with real TS 33.501
cryptography over the SGX-isolated P-AKA modules.

Run:  python examples/session_lifecycle.py
"""

from repro.paka.deploy import IsolationMode
from repro.testbed import Testbed, TestbedConfig


def nas_loop(testbed, ue, first_uplink):
    """Drive a NAS exchange to completion (what the gNB does)."""
    downlink = testbed.amf.handle_nas(ue.name, first_uplink)
    while downlink is not None:
        uplink = ue.handle_nas(downlink)
        if uplink is None:
            break
        downlink = testbed.amf.handle_nas(ue.name, uplink)


def main() -> None:
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=33))
    ue = testbed.add_subscriber()

    print("[1] Initial registration (SUCI conceals the IMSI)")
    outcome = testbed.register(ue)
    assert outcome.success
    print(f"    GUTI {ue.guti}, data session at {ue.ue_address}, "
          f"{outcome.session_setup_ms:.1f} ms")

    print("[2] PDU-session signalling travelled ciphered (128-NEA2)")
    print(f"    NAS secure channel uplink COUNT now "
          f"{ue.secure_channel._send_count}")

    print("[3] Deregistration (integrity-protected; GUTI retired)")
    old_guti = ue.guti
    accept = testbed.amf.handle_nas(ue.name, ue.build_deregistration_request())
    ue.handle_nas(accept)
    assert not ue.registered
    print(f"    context released; {old_guti} no longer valid")

    print("[4] The phone returns: but its USIM is desynchronised")
    ue.usim.sqn_ms = 1 << 36  # e.g. the SIM ran many authentications elsewhere
    nas_loop(testbed, ue, ue.build_registration_request())
    assert ue.registered
    record = testbed.udr.subscriber(str(ue.usim.supi))
    print(f"    AUTS verified inside the eUDM enclave; UDR SQN resynced "
          f"to {record.sqn}")

    print("[5] Idle-mode return: GUTI re-registration (no SUCI round)")
    nas_loop(testbed, ue, ue.build_guti_registration_request())
    assert ue.registered
    print(f"    fresh GUTI {ue.guti}, fresh K_AMF {ue.kamf.hex()[:16]}…")

    from repro.net.sbi import EUDM_VERIFY_AUTS

    eudm = testbed.paka.module("eudm")
    verify_calls = len(eudm.server.lt_us_by_path.get(EUDM_VERIFY_AUTS, []))
    print(f"\nenclave did {eudm.server.requests_served} AKA requests total, "
          f"including {verify_calls} AUTS verification(s); the subscriber "
          f"key K never left it.")


if __name__ == "__main__":
    main()
