#!/usr/bin/env python3
"""HMEE backend shoot-out: plain container vs SGX enclave vs secure VM.

The paper's §IV-C weighs SGX (small TCB, Gramine effort, slow loads,
OCALL taxes) against SEV/TDX-style confidential VMs (run anything,
deploy fast, syscalls cheap — but the whole guest OS joins the TCB).
This example deploys the identical eUDM module under all three backends
and prints the deployment time, the steady-state latency, and — the
punchline — what a kernel exploit gets to read under each.

Run:  python examples/backend_comparison.py
"""

from statistics import mean

from repro.experiments.harness import MODULE_AKA_PATH
from repro.paka.deploy import IsolationMode
from repro.security.attacks import GuestKernelExploitAttack
from repro.security.threat import Attacker
from repro.testbed import Testbed, TestbedConfig

BACKENDS = (IsolationMode.CONTAINER, IsolationMode.SECURE_VM, IsolationMode.SGX)


def main() -> None:
    rows = []
    for isolation in BACKENDS:
        testbed = Testbed.build(TestbedConfig(isolation=isolation, seed=21))
        deploy_s = (
            max(s.seconds for s in testbed.paka.load_spans.values())
            if testbed.paka.load_spans
            else 0.0
        )
        for _ in range(8):
            ue = testbed.add_subscriber()
            assert testbed.register(ue, establish_session=False).success
        server = testbed.paka.modules["eudm"].server
        lt = mean(server.lt_us_by_path[MODULE_AKA_PATH["eudm"]][2:])

        mallory = Attacker("mallory", host=testbed.host, engine=testbed.engine)
        assert mallory.full_chain()
        exploit = GuestKernelExploitAttack().run(mallory, testbed)
        rows.append((isolation.value, deploy_s, lt, exploit.succeeded))

    print(f"{'backend':>10} | {'deploy':>8} | {'L_T (us)':>9} | kernel exploit")
    print("-" * 55)
    for backend, deploy_s, lt, stolen in rows:
        print(
            f"{backend:>10} | {deploy_s:6.1f} s | {lt:9.1f} | "
            + ("STEALS KEYS" if stolen else "gets ciphertext")
        )
    print(
        "\nThe tradeoff in one table: secure VMs are fast and convenient but\n"
        "the guest kernel sits inside the trust domain; SGX pays latency and\n"
        "a ~minute load for a TCB small enough to exclude the OS entirely."
    )


if __name__ == "__main__":
    main()
