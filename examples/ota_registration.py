#!/usr/bin/env python3
"""OTA feasibility test: a COTS OnePlus 8 through the P-AKA slice.

Reproduces the paper's Fig 11 / Table IV scenario: a USRP x310 acts as
the OAI gNB (PLMN 00101 on 3.6192 GHz, 106 PRBs) and a OnePlus 8 with an
OpenCells SIM registers with the 5G core through the SGX-isolated AKA
functions, then pushes user-plane traffic (the "Test1-1 →
OpenAirInterface" connection).  Also demonstrates the two failure modes
the paper reports: custom MCC/MNC (never detected) and the wrong OxygenOS
build (no end-to-end connection).

Run:  python examples/ota_registration.py
"""

from repro.paka.deploy import IsolationMode
from repro.ran.sdr import OtaTestbed, UsrpX310
from repro.testbed import Testbed, TestbedConfig


def describe(result) -> str:
    if not result.detected:
        return "UE never detected the gNB (cell search found no usable PLMN)"
    if result.registration is None or not result.registration.success:
        cause = result.registration.failure_cause if result.registration else "?"
        return f"detected, but registration failed: {cause}"
    if not result.data_session:
        return "registered, but no data session"
    return (
        f"SUCCESS — registered as {result.registration.guti}, data session up, "
        f"setup {result.registration.session_setup_ms:.1f} ms"
    )


def main() -> None:
    radio = UsrpX310()
    print(f"Radio: USRP x310 @ {radio.frequency_ghz} GHz, {radio.prbs} PRBs")

    print("\n[1] Test PLMN 00101 + required OxygenOS build")
    testbed = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=7))
    result = OtaTestbed(testbed, radio=radio).run()
    print("   ", describe(result))
    assert result.success

    print("\n[2] Custom PLMN 90170 (the paper: COTS devices don't detect it)")
    custom = Testbed.build(
        TestbedConfig(isolation=IsolationMode.SGX, seed=8, mcc="901", mnc="70")
    )
    result = OtaTestbed(custom, radio=radio).run()
    print("   ", describe(result))
    assert not result.detected

    print("\n[3] Wrong OxygenOS build (detected, but no end-to-end connection)")
    testbed3 = Testbed.build(TestbedConfig(isolation=IsolationMode.SGX, seed=9))
    wrong_os = testbed3.add_subscriber(commercial=True, os_version="11.0.4.4.IN21DA")
    result = OtaTestbed(testbed3, radio=radio).run(wrong_os)
    print("   ", describe(result))
    assert result.detected and not result.success

    print("\nFeasibility confirmed: HMEE-isolated AKA serves a real UE.")


if __name__ == "__main__":
    main()
